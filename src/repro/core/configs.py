"""Component configuration objects and YAML loading.

Each application component referenced from the task description carries its
own configuration, written as a small YAML document (Figure 3 of the paper).
This module defines the schema of those documents as dataclasses and converts
freely between YAML text, dictionaries and the dataclasses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import yaml


def load_yaml_file(path: str) -> Any:
    """Load a YAML document from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return yaml.safe_load(handle)


def load_config_value(value: Any, base_dir: Optional[str] = None) -> Any:
    """Resolve an attribute value: inline YAML/dict or a path to a YAML file."""
    if isinstance(value, dict):
        return value
    if not isinstance(value, str):
        return value
    candidate = value.strip()
    looks_like_file = candidate.endswith((".yaml", ".yml", ".cfg", ".json"))
    if looks_like_file:
        path = candidate
        if base_dir is not None and not os.path.isabs(path):
            path = os.path.join(base_dir, path)
        if os.path.exists(path):
            return load_yaml_file(path)
        # Referenced but missing config files resolve to an empty mapping so
        # that task descriptions copied from the paper remain loadable.
        return {}
    parsed = yaml.safe_load(candidate)
    return parsed


def _size_to_bytes(value: Any, default: int) -> int:
    """Parse human-friendly sizes such as ``32m``, ``16MB``, ``1g``."""
    if value is None:
        return default
    if isinstance(value, (int, float)):
        return int(value)
    text = str(value).strip().lower()
    multipliers = {"k": 1024, "m": 1024**2, "g": 1024**3}
    for suffix in ("kb", "mb", "gb", "k", "m", "g", "b"):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            factor = multipliers.get(suffix[0], 1)
            return int(float(number) * factor)
    return int(float(text))


def _duration_to_seconds(value: Any, default: float) -> float:
    """Parse durations such as ``2000ms``, ``2s``, ``1.5`` (seconds)."""
    if value is None:
        return default
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip().lower()
    if text.endswith("ms"):
        return float(text[:-2]) / 1000.0
    if text.endswith("s"):
        return float(text[:-1])
    return float(text)


@dataclass
class TopicSpec:
    """One entry of the ``topicCfg`` document."""

    name: str
    partitions: int = 1
    replicas: int = 1
    primary_broker: Optional[str] = None
    #: Per-topic log storage knobs (YAML ``segmentRecords`` /
    #: ``retentionBytes`` / ``retentionMs`` / ``cleanupPolicy``); ``None``
    #: inherits the cluster/broker default.
    segment_records: Optional[int] = None
    retention_bytes: Optional[int] = None
    retention_ms: Optional[float] = None
    cleanup_policy: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopicSpec":
        segment_records = data.get("segmentRecords", data.get("segment_records"))
        retention_bytes = data.get("retentionBytes", data.get("retention_bytes"))
        retention_ms = data.get("retentionMs", data.get("retention_ms"))
        return cls(
            name=data.get("name") or data.get("topicName"),
            partitions=int(data.get("partitions", 1)),
            replicas=int(data.get("replicas", data.get("replicationFactor", 1))),
            primary_broker=data.get("primaryBroker") or data.get("primary_broker"),
            segment_records=None if segment_records is None else int(segment_records),
            retention_bytes=None if retention_bytes is None else int(retention_bytes),
            retention_ms=None if retention_ms is None else float(retention_ms),
            cleanup_policy=data.get("cleanupPolicy", data.get("cleanup_policy")),
        )


@dataclass
class FaultSpec:
    """One entry of the ``faultCfg`` document."""

    kind: str  # "link_down" | "node_disconnect" | "transient_loss"
    targets: List[str] = field(default_factory=list)
    start: float = 0.0
    duration: Optional[float] = None
    loss_percent: float = 0.0

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        kind = data.get("kind") or data.get("type") or "link_down"
        targets = data.get("targets") or data.get("links") or data.get("nodes") or []
        if isinstance(targets, str):
            targets = [targets]
        duration = data.get("duration")
        return cls(
            kind=str(kind),
            targets=list(targets),
            start=_duration_to_seconds(data.get("start"), 0.0),
            duration=None if duration is None else _duration_to_seconds(duration, 0.0),
            loss_percent=float(data.get("lossPercent", data.get("loss", 0.0))),
        )


@dataclass
class ProducerStubConfig:
    """Configuration of a data source stub (Figure 3a)."""

    topic: str = "raw-data"
    topics: List[str] = field(default_factory=list)
    file_path: Optional[str] = None
    total_messages: Optional[int] = None
    message_size: int = 512
    rate_kbps: Optional[float] = None
    messages_per_second: Optional[float] = None
    request_timeout: float = 2.0
    buffer_memory: int = 32 * 1024 * 1024
    acks: Any = 1
    #: Exactly-once produce path (``idempotence`` in YAML): the stub's
    #: producer initializes a coordinator-allocated id and brokers drop
    #: duplicate retries (see ``docs/exactly_once.md``).
    idempotence: bool = False
    #: Transactional produce path (``transactionalId`` in YAML): the stub
    #: groups its output into atomic transactions of ``transaction_batch``
    #: records each (implies idempotence).  The stub suffixes its own name,
    #: so several stubs sharing one scenario-level id never fence each other.
    transactional_id: Optional[str] = None
    #: Records per committed transaction when ``transactional_id`` is set.
    transaction_batch: int = 20
    start_delay: float = 0.0
    #: Dict field of each produced item to use as the record key (``keyField``
    #: in YAML).  Keyed records hash to a stable partition, so multi-partition
    #: topics preserve per-entity order; unset falls back to the stub's
    #: sequential key.
    key_field: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProducerStubConfig":
        data = data or {}
        topics = data.get("topics") or []
        if isinstance(topics, str):
            topics = [topics]
        return cls(
            topic=data.get("topicName") or data.get("topic") or "raw-data",
            topics=list(topics),
            file_path=data.get("filePath") or data.get("file"),
            total_messages=(
                None
                if data.get("totalMessages") is None
                else int(data["totalMessages"])
            ),
            message_size=_size_to_bytes(data.get("messageSize"), 512),
            rate_kbps=(None if data.get("rateKbps") is None else float(data["rateKbps"])),
            messages_per_second=(
                None
                if data.get("messagesPerSecond") is None
                else float(data["messagesPerSecond"])
            ),
            request_timeout=_duration_to_seconds(data.get("requestTimeout"), 2.0),
            buffer_memory=_size_to_bytes(data.get("bufferMemory"), 32 * 1024 * 1024),
            acks=data.get("acks", 1),
            idempotence=bool(data.get("idempotence", data.get("idempotent", False))),
            transactional_id=(
                data.get("transactionalId") or data.get("transactional_id")
            ),
            transaction_batch=int(
                data.get("transactionBatch", data.get("transaction_batch", 20))
            ),
            start_delay=_duration_to_seconds(data.get("startDelay"), 0.0),
            key_field=data.get("keyField") or data.get("key_field"),
        )

    @property
    def all_topics(self) -> List[str]:
        return self.topics if self.topics else [self.topic]


@dataclass
class ConsumerStubConfig:
    """Configuration of a data sink stub."""

    topics: List[str] = field(default_factory=lambda: ["raw-data"])
    output_path: Optional[str] = None
    store_host: Optional[str] = None
    store_table: str = "results"
    poll_interval: float = 0.05
    keep_payloads: bool = True
    #: ``read_uncommitted`` (default) or ``read_committed`` — the latter only
    #: delivers records of committed transactions (``isolationLevel`` in
    #: YAML; see ``docs/exactly_once.md``).
    isolation_level: str = "read_uncommitted"
    start_delay: float = 0.0

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConsumerStubConfig":
        data = data or {}
        topics = data.get("topics") or data.get("topicName") or data.get("topic") or ["raw-data"]
        if isinstance(topics, str):
            topics = [topics]
        return cls(
            topics=list(topics),
            output_path=data.get("outputPath"),
            store_host=data.get("storeHost"),
            store_table=data.get("storeTable", "results"),
            poll_interval=_duration_to_seconds(data.get("pollInterval"), 0.05),
            keep_payloads=bool(data.get("keepPayloads", True)),
            isolation_level=str(
                data.get("isolationLevel", data.get("isolation_level", "read_uncommitted"))
            ),
            start_delay=_duration_to_seconds(data.get("startDelay"), 0.0),
        )


@dataclass
class SPEAppConfig:
    """Configuration of a stream processing job (Figure 3b)."""

    app: str = "identity"
    input_topics: List[str] = field(default_factory=lambda: ["raw-data"])
    output_topic: Optional[str] = None
    batch_interval: float = 1.0
    parallelism: int = 4
    executor_memory: int = 1024 * 1024 * 1024
    event_log: bool = False
    #: Columnar SPE operator plane (True follows the session engine path;
    #: False pins the per-record reference path — results are identical).
    vectorized: bool = True
    options: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SPEAppConfig":
        data = data or {}
        input_topics = data.get("inputTopics") or data.get("inputTopic") or ["raw-data"]
        if isinstance(input_topics, str):
            input_topics = [input_topics]
        app = data.get("app", "identity")
        if isinstance(app, str) and app.endswith(".py"):
            app = os.path.splitext(os.path.basename(app))[0].replace("-", "_")
        known = {
            "app", "inputTopics", "inputTopic", "outputTopic", "batchInterval",
            "parallelism", "executorMemory", "eventLog", "vectorized",
        }
        options = {key: value for key, value in data.items() if key not in known}
        return cls(
            app=app,
            input_topics=list(input_topics),
            output_topic=data.get("outputTopic"),
            batch_interval=_duration_to_seconds(data.get("batchInterval"), 1.0),
            parallelism=int(data.get("parallelism", 4)),
            executor_memory=_size_to_bytes(data.get("executorMemory"), 1024**3),
            event_log=bool(data.get("eventLog", False)),
            vectorized=bool(data.get("vectorized", True)),
            options=options,
        )


@dataclass
class BrokerNodeConfig:
    """Configuration of a message broker node."""

    name: Optional[str] = None
    is_coordinator: bool = False

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BrokerNodeConfig":
        data = data or {}
        return cls(
            name=data.get("name"),
            is_coordinator=bool(data.get("coordinator", False)),
        )


@dataclass
class StoreNodeConfig:
    """Configuration of a data store node."""

    name: Optional[str] = None
    tables: List[str] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoreNodeConfig":
        data = data or {}
        tables = data.get("tables") or []
        if isinstance(tables, str):
            tables = [tables]
        return cls(name=data.get("name"), tables=list(tables))


def parse_topics_config(document: Any) -> List[TopicSpec]:
    """Parse a ``topicCfg`` document (list of topic entries or mapping)."""
    if document is None:
        return []
    if isinstance(document, dict):
        entries = document.get("topics", [])
    else:
        entries = document
    return [TopicSpec.from_dict(entry) for entry in entries]


def parse_faults_config(document: Any) -> List[FaultSpec]:
    """Parse a ``faultCfg`` document."""
    if document is None:
        return []
    if isinstance(document, dict):
        entries = document.get("faults", [])
    else:
        entries = document
    return [FaultSpec.from_dict(entry) for entry in entries]
