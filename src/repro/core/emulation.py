"""The Emulation orchestrator: build, run and report on one emulation task.

This is stream2gym's main entry point (the equivalent of running the tool
against a GraphML task description).  The orchestrator follows the paper's
workflow: instantiate the topology, start the event streaming platform,
initialize every application component, arm the monitoring tasks and the
fault injector, run for the requested duration, and hand back a structured
result object from which the visualization module derives the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.broker.cluster import ClusterConfig
from repro.broker.coordinator import CoordinationMode
from repro.core.components import (
    Deployment,
    build_cluster,
    build_fault_injector,
    build_network,
    deploy_components,
)
from repro.core.graphml import parse_graphml, parse_graphml_string
from repro.core.monitoring import EventLog, LatencyTracker
from repro.core.resources import HostResourceModel, ResourceReport, ServerSpec
from repro.core.task import TaskDescription
from repro.core.visualization import summarize_distribution
from repro.simulation import Simulator


@dataclass
class EmulationResult:
    """Structured output of one emulation run."""

    duration: float
    warmup: float
    messages_produced: int
    messages_consumed: int
    acked_but_lost: int
    latency_summary: Dict[str, float]
    resource_report: ResourceReport
    event_log: EventLog
    spe_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        return {
            "duration": self.duration,
            "messages_produced": self.messages_produced,
            "messages_consumed": self.messages_consumed,
            "acked_but_lost": self.acked_but_lost,
            "latency": dict(self.latency_summary),
            "median_cpu": self.resource_report.median_cpu(),
            "peak_memory": self.resource_report.peak_memory(),
            "spe": {name: dict(metrics) for name, metrics in self.spe_metrics.items()},
        }


class Emulation:
    """One stream2gym emulation instance."""

    def __init__(
        self,
        task: Union[TaskDescription, str],
        seed: int = 0,
        mode: Union[str, CoordinationMode] = CoordinationMode.ZOOKEEPER,
        cluster_config: Optional[ClusterConfig] = None,
        datasets: Optional[Dict[str, Sequence[Any]]] = None,
        server_spec: Optional[ServerSpec] = None,
        monitor_interval: float = 0.5,
    ) -> None:
        if isinstance(task, str):
            if task.lstrip().startswith("<"):
                task = parse_graphml_string(task)
            else:
                task = parse_graphml(task)
        task.require_valid()
        self.task = task
        self.seed = seed
        self.mode = CoordinationMode(mode)
        self.datasets = dict(datasets or {})
        self.monitor_interval = monitor_interval
        self.cluster_config = cluster_config or ClusterConfig(mode=self.mode)
        self.cluster_config.mode = self.mode
        self.server_spec = server_spec or ServerSpec()
        self.sim = Simulator(seed=seed)
        self.event_log = EventLog()
        self.latency = LatencyTracker("end-to-end")
        self.deployment: Optional[Deployment] = None
        self.resource_model: Optional[HostResourceModel] = None
        self._built = False
        self._ran = False

    # -- convenience accessors -----------------------------------------------------------
    @property
    def network(self):
        self._require_built()
        return self.deployment.network

    @property
    def cluster(self):
        self._require_built()
        return self.deployment.cluster

    @property
    def producers(self) -> Dict[str, Any]:
        self._require_built()
        return self.deployment.producers

    @property
    def consumers(self) -> Dict[str, Any]:
        self._require_built()
        return self.deployment.consumers

    @property
    def spes(self) -> Dict[str, Any]:
        self._require_built()
        return self.deployment.spes

    @property
    def stores(self) -> Dict[str, Any]:
        self._require_built()
        return self.deployment.stores

    @property
    def fault_injector(self):
        self._require_built()
        return self.deployment.fault_injector

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("Emulation.build() must be called first")

    # -- lifecycle -------------------------------------------------------------------------
    def build(self) -> "Emulation":
        """Construct the network, platform and components (no traffic yet)."""
        if self._built:
            return self
        network = build_network(self.task, self.sim)
        network.bandwidth_monitor.interval = self.monitor_interval
        cluster = build_cluster(self.task, network, cluster_config=self.cluster_config)
        deployment = Deployment(network=network, cluster=cluster)
        deployment.fault_injector = build_fault_injector(self.task, network)
        self.deployment = deployment
        deploy_components(self.task, deployment, self, datasets=self.datasets)
        self.resource_model = HostResourceModel(
            network, interval=self.monitor_interval, server=self.server_spec
        )
        self.event_log.record(self.sim.now, "emulation", "built", **self.task.summary())
        self._built = True
        return self

    def run(
        self,
        duration: float,
        warmup: float = 0.0,
        settle_time: float = 5.0,
        client_start: Optional[float] = None,
    ) -> EmulationResult:
        """Run the emulation for ``duration`` simulated seconds (after ``warmup``).

        ``settle_time`` is when topics get created after the brokers register;
        ``client_start`` (default ``settle_time + 5``) is when producer,
        consumer and SPE components begin their work.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not self._built:
            self.build()
        if self._ran:
            raise RuntimeError("an Emulation instance can only be run once")
        self._ran = True

        deployment = self.deployment
        network = deployment.network
        network.bandwidth_monitor.start()
        self.resource_model.start(warmup=warmup)

        if deployment.cluster is not None:
            deployment.cluster.start(settle_time=settle_time)
        start_at = client_start if client_start is not None else settle_time + 5.0

        def start_clients() -> None:
            for stub in deployment.producers.values():
                stub.start()
            for stub in deployment.consumers.values():
                stub.start()
            for context in deployment.spes.values():
                context.start()
            self.event_log.record(self.sim.now, "emulation", "clients-started")

        self.sim.schedule_callback(start_at, start_clients, name="emulation:start-clients")

        total = warmup + duration
        self.sim.run(until=total)
        network.bandwidth_monitor.stop()
        self.resource_model.stop()
        self.event_log.record(self.sim.now, "emulation", "finished")
        if deployment.cluster is not None:
            self.event_log.merge(deployment.cluster.coordinator.event_log, "coordinator")
        return self._collect_result(duration=duration, warmup=warmup)

    # -- result collection --------------------------------------------------------------------
    def _collect_result(self, duration: float, warmup: float) -> EmulationResult:
        deployment = self.deployment
        produced = sum(stub.messages_produced for stub in deployment.producers.values())
        consumed = sum(stub.messages_consumed for stub in deployment.consumers.values())
        latencies: List[float] = []
        for stub in deployment.consumers.values():
            latencies.extend(stub.latencies)
        for value in latencies:
            self.latency.observe(self.sim.now, value)
        lost = 0
        if deployment.cluster is not None:
            lost = deployment.cluster.total_lost_records()
        spe_metrics = {
            node_id: {
                "batches": float(context.batches_run),
                "input_records": float(context.total_input_records()),
                "output_records": float(context.total_output_records()),
                "mean_processing_time": context.mean_processing_time(),
            }
            for node_id, context in deployment.spes.items()
        }
        return EmulationResult(
            duration=duration,
            warmup=warmup,
            messages_produced=produced,
            messages_consumed=consumed,
            acked_but_lost=lost,
            latency_summary=summarize_distribution(latencies),
            resource_report=self.resource_model.report,
            event_log=self.event_log,
            spe_metrics=spe_metrics,
        )
