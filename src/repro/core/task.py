"""Programmatic task descriptions.

A :class:`TaskDescription` is the in-memory form of the stream2gym input: a
set of nodes (hosts or switches) with Table I attributes, a set of links, and
the graph-level topic and fault configurations.  GraphML files parse into this
structure; programmatic users (and the example applications) can also build it
directly through the fluent helper methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.attributes import (
    NodeAttribute,
    validate_link_attributes,
    validate_node_attributes,
)
from repro.core.configs import (
    FaultSpec,
    TopicSpec,
    parse_faults_config,
    parse_topics_config,
)


@dataclass
class NodeDescription:
    """One node of the task description graph."""

    node_id: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_switch(self) -> bool:
        """Nodes without component attributes are plain switches."""
        return not self.attributes

    @property
    def is_host(self) -> bool:
        return not self.is_switch

    def attribute(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def component_kinds(self) -> List[str]:
        """Which component kinds this node hosts (producer, broker, ...)."""
        kinds = []
        if NodeAttribute.PROD_TYPE.value in self.attributes:
            kinds.append("producer")
        if NodeAttribute.CONS_TYPE.value in self.attributes:
            kinds.append("consumer")
        if NodeAttribute.BROKER_CFG.value in self.attributes:
            kinds.append("broker")
        if NodeAttribute.STREAM_PROC_TYPE.value in self.attributes:
            kinds.append("spe")
        if NodeAttribute.STORE_TYPE.value in self.attributes:
            kinds.append("store")
        return kinds


@dataclass
class LinkDescription:
    """One link of the task description graph."""

    source: str
    target: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return float(self.attributes.get("lat", 1.0))

    @property
    def bandwidth_mbps(self) -> Optional[float]:
        raw = self.attributes.get("bw")
        return None if raw is None else float(raw)

    @property
    def loss_percent(self) -> float:
        return float(self.attributes.get("loss", 0.0))

    @property
    def source_port(self) -> Optional[int]:
        raw = self.attributes.get("st")
        return None if raw is None else int(raw)

    @property
    def destination_port(self) -> Optional[int]:
        raw = self.attributes.get("dt")
        return None if raw is None else int(raw)


class TaskDescription:
    """The complete description of one emulation task."""

    def __init__(self, name: str = "task") -> None:
        self.name = name
        self.nodes: Dict[str, NodeDescription] = {}
        self.links: List[LinkDescription] = []
        self.graph_attributes: Dict[str, Any] = {}

    # -- construction helpers --------------------------------------------------------
    def add_node(self, node_id: str, **attributes: Any) -> NodeDescription:
        """Add a node; keyword arguments become Table I attributes."""
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        node = NodeDescription(node_id=node_id, attributes=dict(attributes))
        self.nodes[node_id] = node
        return node

    def add_switch(self, node_id: str) -> NodeDescription:
        return self.add_node(node_id)

    def add_link(
        self,
        source: str,
        target: str,
        lat: Optional[float] = None,
        bw: Optional[float] = None,
        loss: Optional[float] = None,
        st: Optional[int] = None,
        dt: Optional[int] = None,
    ) -> LinkDescription:
        attributes: Dict[str, Any] = {}
        if lat is not None:
            attributes["lat"] = lat
        if bw is not None:
            attributes["bw"] = bw
        if loss is not None:
            attributes["loss"] = loss
        if st is not None:
            attributes["st"] = st
        if dt is not None:
            attributes["dt"] = dt
        link = LinkDescription(source=source, target=target, attributes=attributes)
        self.links.append(link)
        return link

    def set_topics(self, topics: List[TopicSpec]) -> None:
        entries = []
        for topic in topics:
            entry = {
                "name": topic.name,
                "partitions": topic.partitions,
                "replicas": topic.replicas,
                "primaryBroker": topic.primary_broker,
            }
            # Storage knobs only when set, keeping default documents stable.
            if topic.segment_records is not None:
                entry["segmentRecords"] = topic.segment_records
            if topic.retention_bytes is not None:
                entry["retentionBytes"] = topic.retention_bytes
            if topic.retention_ms is not None:
                entry["retentionMs"] = topic.retention_ms
            if topic.cleanup_policy is not None:
                entry["cleanupPolicy"] = topic.cleanup_policy
            entries.append(entry)
        self.graph_attributes["topicCfg"] = {"topics": entries}

    def set_faults(self, faults: List[FaultSpec]) -> None:
        self.graph_attributes["faultCfg"] = {
            "faults": [
                {
                    "kind": fault.kind,
                    "targets": list(fault.targets),
                    "start": fault.start,
                    "duration": fault.duration,
                    "lossPercent": fault.loss_percent,
                }
                for fault in faults
            ]
        }

    # -- derived views -------------------------------------------------------------------
    @property
    def topics(self) -> List[TopicSpec]:
        return parse_topics_config(self.graph_attributes.get("topicCfg"))

    @property
    def faults(self) -> List[FaultSpec]:
        return parse_faults_config(self.graph_attributes.get("faultCfg"))

    def hosts(self) -> List[NodeDescription]:
        return [node for node in self.nodes.values() if node.is_host]

    def switches(self) -> List[NodeDescription]:
        return [node for node in self.nodes.values() if node.is_switch]

    def nodes_with(self, attribute: str) -> List[NodeDescription]:
        return [node for node in self.nodes.values() if attribute in node.attributes]

    def component_count(self) -> int:
        """Number of application components across all nodes (Table II metric)."""
        return sum(len(node.component_kinds()) for node in self.nodes.values())

    # -- validation -----------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Return all problems found in the description (empty when valid)."""
        problems: List[str] = []
        for node in self.nodes.values():
            for problem in validate_node_attributes(node.attributes):
                problems.append(f"node {node.node_id}: {problem}")
        known = set(self.nodes)
        for link in self.links:
            for endpoint in (link.source, link.target):
                if endpoint not in known:
                    problems.append(f"link references unknown node {endpoint!r}")
            for problem in validate_link_attributes(link.attributes):
                problems.append(f"link {link.source}-{link.target}: {problem}")
        if not self.links and len(self.nodes) > 1:
            problems.append("task has multiple nodes but no links")
        broker_nodes = self.nodes_with("brokerCfg")
        if self.topics and not broker_nodes:
            problems.append("topics are configured but no node hosts a broker")
        for topic in self.topics:
            if topic.replicas > max(1, len(broker_nodes)):
                problems.append(
                    f"topic {topic.name!r} requests {topic.replicas} replicas but only "
                    f"{len(broker_nodes)} broker nodes exist"
                )
        return problems

    def require_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ValueError("invalid task description:\n- " + "\n- ".join(problems))

    def summary(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "hosts": len(self.hosts()),
            "switches": len(self.switches()),
            "links": len(self.links),
            "components": self.component_count(),
            "topics": [topic.name for topic in self.topics],
            "faults": len(self.faults),
        }
