"""Monitoring: timestamped event logs and latency tracking.

stream2gym logs relevant application events (processing checkpoints, failure
injections, leader elections) through the Python logging facility and
collects network statistics through OpenFlow counters.  The reproduction
gathers the same information in structured form so experiments and tests can
assert on it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class LoggedEvent:
    """One timestamped event."""

    time: float
    component: str
    event: str
    details: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Cluster-wide, time-ordered event log."""

    def __init__(self) -> None:
        self.events: List[LoggedEvent] = []

    def record(self, time: float, component: str, event: str, **details: Any) -> None:
        self.events.append(
            LoggedEvent(time=time, component=component, event=event, details=details)
        )

    def by_component(self, component: str) -> List[LoggedEvent]:
        return [event for event in self.events if event.component == component]

    def by_event(self, event: str) -> List[LoggedEvent]:
        return [entry for entry in self.events if entry.event == event]

    def between(self, start: float, end: float) -> List[LoggedEvent]:
        return [event for event in self.events if start <= event.time <= end]

    def merge(self, other_events: List[Dict[str, Any]], component: str) -> None:
        """Merge raw event dictionaries (e.g. the coordinator's log)."""
        for entry in other_events:
            details = {k: v for k, v in entry.items() if k not in ("time", "event")}
            self.record(entry["time"], component, entry["event"], **details)

    def sorted(self) -> List[LoggedEvent]:
        return sorted(self.events, key=lambda event: event.time)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class LatencySample:
    """One end-to-end latency observation."""

    time: float
    latency: float
    topic: Optional[str] = None
    key: Any = None


class LatencyTracker:
    """Collects end-to-end latency observations and summarizes them."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.samples: List[LatencySample] = []

    def observe(self, time: float, latency: float, topic: Optional[str] = None, key: Any = None) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.samples.append(LatencySample(time=time, latency=latency, topic=topic, key=key))

    def values(self, topic: Optional[str] = None) -> List[float]:
        return [
            sample.latency
            for sample in self.samples
            if topic is None or sample.topic == topic
        ]

    def mean(self, topic: Optional[str] = None) -> float:
        values = self.values(topic)
        return sum(values) / len(values) if values else 0.0

    def percentile(self, fraction: float, topic: Optional[str] = None) -> float:
        values = sorted(self.values(topic))
        if not values:
            return 0.0
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must lie in [0, 1]")
        index = min(len(values) - 1, int(round(fraction * (len(values) - 1))))
        return values[index]

    def maximum(self, topic: Optional[str] = None) -> float:
        return max(self.values(topic), default=0.0)

    def __len__(self) -> int:
        return len(self.samples)
