"""The stream2gym modeling-language attributes (Table I of the paper).

The task description is a graph whose nodes and links carry these attributes.
Every attribute can either hold an inline value or point to a YAML
configuration file; :mod:`repro.core.graphml` resolves file references, and
:mod:`repro.core.components` interprets the values when deploying components.
"""

from __future__ import annotations

import enum
from typing import Dict, List


class GraphAttribute(str, enum.Enum):
    """Graph-level attributes."""

    TOPIC_CFG = "topicCfg"
    FAULT_CFG = "faultCfg"


class NodeAttribute(str, enum.Enum):
    """Node-level attributes."""

    PROD_TYPE = "prodType"
    PROD_CFG = "prodCfg"
    CONS_TYPE = "consType"
    CONS_CFG = "consCfg"
    STREAM_PROC_TYPE = "streamProcType"
    STREAM_PROC_CFG = "streamProcCfg"
    STORE_TYPE = "storeType"
    STORE_CFG = "storeCfg"
    BROKER_CFG = "brokerCfg"
    CPU_PERCENTAGE = "cpuPercentage"


class LinkAttribute(str, enum.Enum):
    """Link-level attributes."""

    LATENCY = "lat"
    BANDWIDTH = "bw"
    LOSS = "loss"
    SOURCE_PORT = "st"
    DESTINATION_PORT = "dt"


class ProducerType(str, enum.Enum):
    """Data source (producer stub) types shipped with the tool."""

    #: Single File Single Topic: produce each line/element of one file to one topic.
    SFST = "SFST"
    #: Produce each file in a directory as one message.
    DIRECTORY = "DIRECTORY"
    #: Produce synthetic payloads at a constant bitrate to one or more topics.
    RANDOM_RATE = "RANDOM_RATE"
    #: Replay pre-generated (timestamp, payload) items.
    REPLAY = "REPLAY"


class ConsumerType(str, enum.Enum):
    """Data sink (consumer stub) types."""

    #: Subscribe and record every message (default data sink).
    STANDARD = "STANDARD"
    #: Append consumed payloads to an in-memory file image.
    FILE = "FILE"
    #: Forward consumed messages into an external data store.
    STORE = "STORE"


class StreamProcType(str, enum.Enum):
    """Supported stream processing engine types.

    The reproduction implements a single micro-batch engine; SPARK maps to it
    directly, while FLINK and KSTREAM are accepted and mapped onto the same
    engine with different default configurations (the paper's discussion
    section describes the analogous plug-in plan for stream2gym).
    """

    SPARK = "SPARK"
    FLINK = "FLINK"
    KSTREAM = "KSTREAM"


class StoreType(str, enum.Enum):
    """Supported data store types (all map onto the table/key-value store)."""

    MYSQL = "MYSQL"
    MONGODB = "MONGODB"
    ROCKSDB = "ROCKSDB"


#: Attributes whose values are expected to be (or point to) YAML documents.
CONFIG_ATTRIBUTES = {
    GraphAttribute.TOPIC_CFG.value,
    GraphAttribute.FAULT_CFG.value,
    NodeAttribute.PROD_CFG.value,
    NodeAttribute.CONS_CFG.value,
    NodeAttribute.STREAM_PROC_CFG.value,
    NodeAttribute.STORE_CFG.value,
    NodeAttribute.BROKER_CFG.value,
}

ALL_GRAPH_ATTRIBUTES = [attribute.value for attribute in GraphAttribute]
ALL_NODE_ATTRIBUTES = [attribute.value for attribute in NodeAttribute]
ALL_LINK_ATTRIBUTES = [attribute.value for attribute in LinkAttribute]


def validate_node_attributes(attributes: Dict[str, object]) -> List[str]:
    """Return a list of problems with a node's attribute dictionary."""
    problems: List[str] = []
    known = set(ALL_NODE_ATTRIBUTES)
    for name in attributes:
        if name not in known:
            problems.append(f"unknown node attribute {name!r}")
    prod_type = attributes.get(NodeAttribute.PROD_TYPE.value)
    if prod_type is not None and prod_type not in ProducerType.__members__ and prod_type not in [
        member.value for member in ProducerType
    ]:
        problems.append(f"unknown producer type {prod_type!r}")
    cons_type = attributes.get(NodeAttribute.CONS_TYPE.value)
    if cons_type is not None and cons_type not in [member.value for member in ConsumerType]:
        problems.append(f"unknown consumer type {cons_type!r}")
    spe_type = attributes.get(NodeAttribute.STREAM_PROC_TYPE.value)
    if spe_type is not None and spe_type not in [member.value for member in StreamProcType]:
        problems.append(f"unknown stream processing engine type {spe_type!r}")
    store_type = attributes.get(NodeAttribute.STORE_TYPE.value)
    if store_type is not None and store_type not in [member.value for member in StoreType]:
        problems.append(f"unknown store type {store_type!r}")
    cpu = attributes.get(NodeAttribute.CPU_PERCENTAGE.value)
    if cpu is not None:
        try:
            value = float(cpu)
            if not 0 < value <= 100:
                problems.append(f"cpuPercentage must lie in (0, 100], got {value}")
        except (TypeError, ValueError):
            problems.append(f"cpuPercentage must be numeric, got {cpu!r}")
    return problems


def validate_link_attributes(attributes: Dict[str, object]) -> List[str]:
    """Return a list of problems with a link's attribute dictionary."""
    problems: List[str] = []
    known = set(ALL_LINK_ATTRIBUTES)
    for name in attributes:
        if name not in known:
            problems.append(f"unknown link attribute {name!r}")
    for numeric in (LinkAttribute.LATENCY, LinkAttribute.BANDWIDTH, LinkAttribute.LOSS):
        raw = attributes.get(numeric.value)
        if raw is None:
            continue
        try:
            value = float(raw)
        except (TypeError, ValueError):
            problems.append(f"{numeric.value} must be numeric, got {raw!r}")
            continue
        if value < 0:
            problems.append(f"{numeric.value} must be non-negative, got {value}")
        if numeric is LinkAttribute.LOSS and value > 100:
            problems.append(f"loss must be at most 100, got {value}")
    return problems
