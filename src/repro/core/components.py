"""Component factory: deploy a task description onto the emulation substrates.

Given a validated :class:`TaskDescription`, the factory builds the network
topology, stands up the event streaming platform (coordinator + brokers +
topics), and instantiates every application component declared on the nodes:
producer stubs, consumer stubs, stream processing contexts (with their
registered application wired in), and data store servers.  Fault
configurations are translated into scheduled fault-injector actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.broker.cluster import BrokerCluster, ClusterConfig
from repro.broker.topic import TopicConfig
from repro.core.attributes import ConsumerType, NodeAttribute, ProducerType, StoreType
from repro.core.configs import (
    BrokerNodeConfig,
    ConsumerStubConfig,
    FaultSpec,
    ProducerStubConfig,
    SPEAppConfig,
    StoreNodeConfig,
)
from repro.core.registry import app_builder
from repro.core.task import NodeDescription, TaskDescription
from repro.engine.context import StreamingConfig, StreamingContext
from repro.engine.executor import ExecutorConfig
from repro.network.faults import FaultInjector, LinkFault, NodeDisconnection
from repro.network.link import LinkConfig
from repro.network.network import Network
from repro.network.topology import TopologyBuilder
from repro.simulation import Simulator
from repro.store.server import StoreServer
from repro.stubs.consumers import (
    FileSinkConsumerStub,
    StandardConsumerStub,
    StoreSinkConsumerStub,
)
from repro.stubs.producers import (
    DirectoryProducerStub,
    RandomRateProducerStub,
    ReplayProducerStub,
    SFSTProducerStub,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.emulation import Emulation


@dataclass
class Deployment:
    """Everything the factory created for one emulation."""

    network: Network
    cluster: Optional[BrokerCluster] = None
    fault_injector: Optional[FaultInjector] = None
    producers: Dict[str, Any] = field(default_factory=dict)
    consumers: Dict[str, Any] = field(default_factory=dict)
    spes: Dict[str, StreamingContext] = field(default_factory=dict)
    stores: Dict[str, StoreServer] = field(default_factory=dict)

    def all_consumer_clients(self) -> List[Any]:
        return [stub.consumer for stub in self.consumers.values()]

    def all_producer_clients(self) -> List[Any]:
        return [stub.producer for stub in self.producers.values()]


def build_network(task: TaskDescription, sim: Simulator) -> Network:
    """Create hosts, switches and links from the task description."""
    builder = TopologyBuilder()
    for node in task.nodes.values():
        if node.is_switch:
            builder.add_switch(node.node_id)
        else:
            cpu = float(node.attribute(NodeAttribute.CPU_PERCENTAGE.value, 100.0))
            builder.add_host(node.node_id, cpu_percentage=cpu)
    for link in task.links:
        builder.add_link(
            link.source,
            link.target,
            config=LinkConfig(
                latency_ms=link.latency_ms,
                bandwidth_mbps=link.bandwidth_mbps if link.bandwidth_mbps else 1000.0,
                loss_percent=link.loss_percent,
            ),
            port_a=link.source_port,
            port_b=link.destination_port,
        )
    network = builder.build(sim)
    network.start(monitor=False)
    return network


def build_cluster(
    task: TaskDescription,
    network: Network,
    cluster_config: Optional[ClusterConfig] = None,
) -> Optional[BrokerCluster]:
    """Stand up the event streaming platform declared by the task description."""
    broker_nodes = task.nodes_with(NodeAttribute.BROKER_CFG.value)
    if not broker_nodes:
        return None
    configs = {
        node.node_id: BrokerNodeConfig.from_dict(
            node.attribute(NodeAttribute.BROKER_CFG.value) or {}
        )
        for node in broker_nodes
    }
    coordinator_host = next(
        (node_id for node_id, config in configs.items() if config.is_coordinator),
        broker_nodes[0].node_id,
    )
    cluster = BrokerCluster(network, coordinator_host=coordinator_host, config=cluster_config)
    for node in broker_nodes:
        name = configs[node.node_id].name or f"broker-{node.node_id}"
        cluster.add_broker(node.node_id, name=name)
    for topic in task.topics:
        preferred = topic.primary_broker
        if preferred and preferred in task.nodes:
            preferred = f"broker-{preferred}"
        cluster.add_topic(
            TopicConfig(
                name=topic.name,
                partitions=topic.partitions,
                replication_factor=topic.replicas,
                preferred_leader=preferred,
                segment_records=topic.segment_records,
                retention_bytes=topic.retention_bytes,
                retention_ms=topic.retention_ms,
                cleanup_policy=topic.cleanup_policy,
            )
        )
    return cluster


def build_fault_injector(task: TaskDescription, network: Network) -> FaultInjector:
    """Arm the fault injector with the ``faultCfg`` entries."""
    injector = FaultInjector(network)
    for fault in task.faults:
        schedule_fault(injector, fault)
    return injector


def schedule_fault(injector: FaultInjector, fault: FaultSpec) -> None:
    if fault.kind == "link_down":
        if len(fault.targets) != 2:
            raise ValueError(
                f"link_down fault needs exactly two targets, got {fault.targets}"
            )
        injector.schedule_link_fault(
            LinkFault(
                endpoints=(fault.targets[0], fault.targets[1]),
                start=fault.start,
                duration=fault.duration,
            )
        )
    elif fault.kind == "node_disconnect":
        for node in fault.targets:
            injector.schedule_node_disconnection(
                NodeDisconnection(node=node, start=fault.start, duration=fault.duration)
            )
    elif fault.kind == "transient_loss":
        for link in injector.network.links:
            endpoints = set(link.endpoints())
            if endpoints == set(fault.targets):
                original = link.config.loss_percent

                def raise_loss(link=link, loss=fault.loss_percent):
                    link.config.loss_percent = loss

                def restore_loss(link=link, loss=original):
                    link.config.loss_percent = loss

                injector.network.sim.schedule_callback(
                    fault.start, raise_loss, name="fault:loss-up"
                )
                if fault.duration is not None:
                    injector.network.sim.schedule_callback(
                        fault.start + fault.duration, restore_loss, name="fault:loss-down"
                    )
    else:
        raise ValueError(f"unknown fault kind {fault.kind!r}")


def deploy_components(
    task: TaskDescription,
    deployment: Deployment,
    emulation: "Emulation",
    datasets: Optional[Dict[str, Sequence[Any]]] = None,
) -> None:
    """Instantiate producer/consumer stubs, SPE contexts and store servers."""
    datasets = datasets or {}
    for node in task.hosts():
        _deploy_store(node, deployment)
    for node in task.hosts():
        _deploy_producer(node, deployment, datasets)
        _deploy_consumer(node, deployment)
        _deploy_spe(node, deployment, emulation)


def _deploy_producer(
    node: NodeDescription, deployment: Deployment, datasets: Dict[str, Sequence[Any]]
) -> None:
    prod_type = node.attribute(NodeAttribute.PROD_TYPE.value)
    if prod_type is None:
        return
    if deployment.cluster is None:
        raise ValueError(
            f"node {node.node_id} declares a producer but no broker exists in the task"
        )
    config = ProducerStubConfig.from_dict(
        node.attribute(NodeAttribute.PROD_CFG.value) or {}
    )
    producer_type = ProducerType(prod_type)
    name = f"producer-{node.node_id}"
    if producer_type is ProducerType.SFST:
        items = list(datasets.get(config.file_path or "", [])) or _default_items(config)
        stub = SFSTProducerStub(deployment.cluster, node.node_id, items, config, name=name)
    elif producer_type is ProducerType.DIRECTORY:
        files = list(datasets.get(config.file_path or "", []))
        if not files:
            files = [(f"doc-{i}.txt", text) for i, text in enumerate(_default_items(config))]
        stub = DirectoryProducerStub(deployment.cluster, node.node_id, files, config, name=name)
    elif producer_type is ProducerType.RANDOM_RATE:
        stub = RandomRateProducerStub(deployment.cluster, node.node_id, config, name=name)
    elif producer_type is ProducerType.REPLAY:
        timeline = list(datasets.get(config.file_path or "", []))
        stub = ReplayProducerStub(deployment.cluster, node.node_id, timeline, config, name=name)
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unsupported producer type {producer_type}")
    deployment.producers[node.node_id] = stub


def _default_items(config: ProducerStubConfig) -> List[str]:
    """Fallback synthetic items when no dataset was registered for a file path."""
    total = config.total_messages or 100
    return [f"synthetic record {index} for {config.topic}" for index in range(total)]


def _deploy_consumer(node: NodeDescription, deployment: Deployment) -> None:
    cons_type = node.attribute(NodeAttribute.CONS_TYPE.value)
    if cons_type is None:
        return
    if deployment.cluster is None:
        raise ValueError(
            f"node {node.node_id} declares a consumer but no broker exists in the task"
        )
    config = ConsumerStubConfig.from_dict(
        node.attribute(NodeAttribute.CONS_CFG.value) or {}
    )
    consumer_type = ConsumerType(cons_type)
    name = f"consumer-{node.node_id}"
    if consumer_type is ConsumerType.STANDARD:
        stub = StandardConsumerStub(deployment.cluster, node.node_id, config, name=name)
    elif consumer_type is ConsumerType.FILE:
        stub = FileSinkConsumerStub(deployment.cluster, node.node_id, config, name=name)
    elif consumer_type is ConsumerType.STORE:
        stub = StoreSinkConsumerStub(deployment.cluster, node.node_id, config, name=name)
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unsupported consumer type {consumer_type}")
    deployment.consumers[node.node_id] = stub


def _deploy_spe(node: NodeDescription, deployment: Deployment, emulation: "Emulation") -> None:
    spe_type = node.attribute(NodeAttribute.STREAM_PROC_TYPE.value)
    if spe_type is None:
        return
    config = SPEAppConfig.from_dict(
        node.attribute(NodeAttribute.STREAM_PROC_CFG.value) or {}
    )
    host = deployment.network.host(node.node_id)
    context = StreamingContext(
        host,
        config=StreamingConfig(
            batch_interval=config.batch_interval,
            executor=ExecutorConfig(
                parallelism=config.parallelism,
                executor_memory=config.executor_memory,
            ),
            # True defers to the session engine path; False pins records.
            vectorized=None if config.vectorized else False,
        ),
        cluster=deployment.cluster,
        name=f"spe-{node.node_id}",
    )
    builder = app_builder(config.app)
    builder(context, config, emulation)
    deployment.spes[node.node_id] = context


def _deploy_store(node: NodeDescription, deployment: Deployment) -> None:
    store_type = node.attribute(NodeAttribute.STORE_TYPE.value)
    if store_type is None:
        return
    StoreType(store_type)  # validates the declared engine type
    config = StoreNodeConfig.from_dict(node.attribute(NodeAttribute.STORE_CFG.value) or {})
    host = deployment.network.host(node.node_id)
    server = StoreServer(host, name=config.name or f"store-{node.node_id}")
    for table in config.tables:
        server.tables.table(table)
    deployment.stores[node.node_id] = server
