"""GraphML parsing for task descriptions.

stream2gym task descriptions are GraphML documents (Figure 4 of the paper):
``<node>`` elements carry Table I attributes as ``<data key="...">`` children,
``<edge>`` elements carry link attributes, and graph-level ``<data>`` elements
carry the topic and fault configuration.  Attribute values may be inline YAML
or references to YAML files resolved relative to the GraphML file.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ElementTree
from typing import Any, Dict, Optional

from repro.core.attributes import CONFIG_ATTRIBUTES
from repro.core.configs import load_config_value
from repro.core.task import TaskDescription

_GRAPHML_NAMESPACE = "http://graphml.graphdrawing.org/xmlns"


def _strip_namespace(tag: str) -> str:
    return tag.split("}", 1)[1] if "}" in tag else tag


def _parse_data_elements(element, base_dir: Optional[str]) -> Dict[str, Any]:
    """Collect <data key="...">value</data> children into a dictionary."""
    attributes: Dict[str, Any] = {}
    for child in element:
        if _strip_namespace(child.tag) != "data":
            continue
        key = child.attrib.get("key")
        if key is None:
            continue
        raw = (child.text or "").strip()
        if key in CONFIG_ATTRIBUTES:
            attributes[key] = load_config_value(raw, base_dir=base_dir)
        else:
            attributes[key] = _coerce_scalar(raw)
    return attributes


def _coerce_scalar(value: str) -> Any:
    """Convert numeric-looking strings to int/float, leave the rest as text."""
    if value == "":
        return ""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_graphml_string(
    document: str, base_dir: Optional[str] = None, name: str = "task"
) -> TaskDescription:
    """Parse a GraphML document held in a string."""
    root = ElementTree.fromstring(document)
    graph_element = None
    for element in root.iter():
        if _strip_namespace(element.tag) == "graph":
            graph_element = element
            break
    if graph_element is None:
        raise ValueError("GraphML document contains no <graph> element")

    task = TaskDescription(name=name)
    task.graph_attributes.update(_parse_data_elements(graph_element, base_dir))

    for element in graph_element:
        tag = _strip_namespace(element.tag)
        if tag == "node":
            node_id = element.attrib.get("id")
            if node_id is None:
                raise ValueError("GraphML node without an id")
            attributes = _parse_data_elements(element, base_dir)
            task.add_node(node_id, **attributes)
        elif tag == "edge":
            source = element.attrib.get("source")
            target = element.attrib.get("target")
            if source is None or target is None:
                raise ValueError("GraphML edge without source/target")
            attributes = _parse_data_elements(element, base_dir)
            link = task.add_link(source, target)
            link.attributes.update(attributes)
    return task


def parse_graphml(path: str) -> TaskDescription:
    """Parse a GraphML task description from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = handle.read()
    base_dir = os.path.dirname(os.path.abspath(path))
    name = os.path.splitext(os.path.basename(path))[0]
    return parse_graphml_string(document, base_dir=base_dir, name=name)


def to_graphml(task: TaskDescription) -> str:
    """Serialize a task description back to GraphML text.

    This supports the infrastructure-as-code style workflow from the paper's
    discussion section: programmatically built scenarios can be exported,
    shared and re-imported.
    """
    lines = ['<?xml version="1.0" encoding="UTF-8"?>']
    lines.append(f'<graphml xmlns="{_GRAPHML_NAMESPACE}">')
    lines.append('  <graph edgedefault="undirected">')
    for key, value in task.graph_attributes.items():
        lines.append(f'    <data key="{key}">{_render_value(value)}</data>')
    for node in task.nodes.values():
        if not node.attributes:
            lines.append(f'    <node id="{node.node_id}"/>')
            continue
        lines.append(f'    <node id="{node.node_id}">')
        for key, value in node.attributes.items():
            lines.append(f'      <data key="{key}">{_render_value(value)}</data>')
        lines.append("    </node>")
    for link in task.links:
        if not link.attributes:
            lines.append(f'    <edge source="{link.source}" target="{link.target}"/>')
            continue
        lines.append(f'    <edge source="{link.source}" target="{link.target}">')
        for key, value in link.attributes.items():
            lines.append(f'      <data key="{key}">{_render_value(value)}</data>')
        lines.append("    </edge>")
    lines.append("  </graph>")
    lines.append("</graphml>")
    return "\n".join(lines)


def _render_value(value: Any) -> str:
    if isinstance(value, (dict, list)):
        import yaml

        return yaml.safe_dump(value, default_flow_style=True).strip()
    return str(value)
