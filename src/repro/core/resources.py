"""Model of the underlying (physical) host's resource usage.

stream2gym runs every emulated component as a process on one physical server
and reports that server's CPU and memory utilization by sampling
``/proc/stat`` and ``/proc/meminfo`` every 500 ms (Figure 9).  The
reproduction models the same quantities from the emulation's activity:

* CPU: a per-sample utilization estimate combining an OS baseline, a fixed
  idle cost per deployed component (JVM housekeeping, Mininet namespaces), a
  start-up surge while components initialize, and a dynamic term proportional
  to the network traffic and broker/SPE work done in the sampling interval.
* Memory: an OS baseline plus per-component footprints (broker heap, producer
  ``buffer.memory``, consumer fetch buffers, SPE executor memory) plus the
  bytes retained in broker logs and data stores.

The constants are calibrated against the figures reported for the paper's
i7-3770 / 16 GB reference machine, and the *shape* (growth per added site,
buffer-size effect) is what the Figure 9 reproduction asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.broker.broker import Broker
from repro.broker.consumer import Consumer
from repro.broker.producer import Producer
from repro.engine.context import StreamingContext
from repro.store.server import StoreServer


@dataclass
class ServerSpec:
    """The physical server hosting the emulation (Section IV of the paper)."""

    cores: int = 8
    memory_bytes: int = 16 * 1024**3
    #: Baseline CPU utilization of the idle OS + emulator control plane (%).
    baseline_cpu: float = 2.0
    #: Baseline memory utilization (OS, emulator, interpreter) as a fraction.
    baseline_memory_fraction: float = 0.14


@dataclass
class ResourceSample:
    """One 500 ms sample of host utilization."""

    time: float
    cpu_percent: float
    memory_percent: float


@dataclass
class ResourceReport:
    """Aggregated view over all samples of one emulation run."""

    samples: List[ResourceSample] = field(default_factory=list)

    def cpu_values(self) -> List[float]:
        return [sample.cpu_percent for sample in self.samples]

    def memory_values(self) -> List[float]:
        return [sample.memory_percent for sample in self.samples]

    def median_cpu(self) -> float:
        values = sorted(self.cpu_values())
        if not values:
            return 0.0
        middle = len(values) // 2
        if len(values) % 2 == 1:
            return values[middle]
        return (values[middle - 1] + values[middle]) / 2.0

    def peak_memory(self) -> float:
        return max(self.memory_values(), default=0.0)

    def cpu_cdf(self) -> List[tuple]:
        """(utilization, cumulative fraction) points for the Figure 9a CDF."""
        values = sorted(self.cpu_values())
        n = len(values)
        return [(value, (index + 1) / n) for index, value in enumerate(values)]

    def fraction_below(self, cpu_threshold: float) -> float:
        values = self.cpu_values()
        if not values:
            return 0.0
        return sum(1 for value in values if value <= cpu_threshold) / len(values)


#: Per-component idle CPU cost (% of one server) and memory footprint (bytes).
COMPONENT_CPU_IDLE = {
    "broker": 0.55,
    "producer": 0.12,
    "consumer": 0.12,
    "spe": 0.80,
    "store": 0.30,
    "switch": 0.05,
    "coordinator": 0.25,
    #: Every emulated host costs a little even when idle (network namespace,
    #: veth pair, per-host monitoring task).
    "host": 0.08,
}

COMPONENT_MEMORY = {
    "broker": 220 * 1024**2,
    "producer": 48 * 1024**2,
    "consumer": 56 * 1024**2,
    "spe": 420 * 1024**2,
    "store": 180 * 1024**2,
    "switch": 8 * 1024**2,
    "coordinator": 96 * 1024**2,
    "host": 14 * 1024**2,
}

#: Dynamic CPU cost per megabyte moved through the emulated network.
CPU_PER_MBYTE = 0.9
#: Extra CPU charged while the platform is still initializing (start-up surge).
STARTUP_SURGE_CPU = 18.0
STARTUP_WINDOW = 12.0


class HostResourceModel:
    """Samples the modelled CPU/memory utilization of the underlying server."""

    def __init__(
        self,
        network,
        interval: float = 0.5,
        server: Optional[ServerSpec] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.sim = network.sim
        self.interval = interval
        self.server = server or ServerSpec()
        self.report = ResourceReport()
        self._last_bytes = 0
        self._started_at: Optional[float] = None
        self._running = False

    # -- component inventory ----------------------------------------------------------
    def component_counts(self) -> Dict[str, int]:
        counts = {key: 0 for key in COMPONENT_CPU_IDLE}
        counts["switch"] = len(self.network.switches)
        counts["host"] = len(self.network.hosts)
        for host in self.network.hosts.values():
            for component in host.components:
                counts[self._kind_of(component)] = counts.get(self._kind_of(component), 0) + 1
        return counts

    @staticmethod
    def _kind_of(component) -> str:
        if isinstance(component, Broker):
            return "broker"
        if isinstance(component, Producer):
            return "producer"
        if isinstance(component, Consumer):
            return "consumer"
        if isinstance(component, StreamingContext):
            return "spe"
        if isinstance(component, StoreServer):
            return "store"
        type_name = type(component).__name__.lower()
        if "coordinator" in type_name:
            return "coordinator"
        return "other"

    # -- sampling ------------------------------------------------------------------------
    def start(self, warmup: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self._started_at = self.sim.now
        self.sim.process(self._run(warmup), name="resource-model")

    def stop(self) -> None:
        self._running = False

    def _run(self, warmup: float):
        if warmup > 0:
            yield self.sim.timeout(warmup)
            # Warm-up samples are discarded, as in the paper's methodology.
            self._last_bytes = self._network_bytes()
        while self._running:
            yield self.sim.timeout(self.interval)
            self.report.samples.append(self.sample())

    def _network_bytes(self) -> int:
        total = 0
        for host in self.network.hosts.values():
            total += host.port.stats.tx_bytes + host.port.stats.rx_bytes
        return total

    def sample(self) -> ResourceSample:
        """Compute one utilization sample at the current simulated time."""
        now = self.sim.now
        counts = self.component_counts()

        cpu = self.server.baseline_cpu
        for kind, count in counts.items():
            cpu += COMPONENT_CPU_IDLE.get(kind, 0.1) * count
        current_bytes = self._network_bytes()
        delta_mb = max(0, current_bytes - self._last_bytes) / 1024**2
        self._last_bytes = current_bytes
        cpu += CPU_PER_MBYTE * delta_mb / self.interval
        if self._started_at is not None and now - self._started_at < STARTUP_WINDOW:
            remaining = 1.0 - (now - self._started_at) / STARTUP_WINDOW
            cpu += STARTUP_SURGE_CPU * remaining
        cpu = min(100.0, cpu)

        memory_bytes = self.server.baseline_memory_fraction * self.server.memory_bytes
        for kind, count in counts.items():
            memory_bytes += COMPONENT_MEMORY.get(kind, 16 * 1024**2) * count
        for host in self.network.hosts.values():
            for component in host.components:
                if isinstance(component, Producer):
                    # The configured buffer.memory is reserved up front by the
                    # Kafka producer, which is what Figure 9c measures.
                    memory_bytes += component.config.buffer_memory
                elif isinstance(component, Broker):
                    memory_bytes += sum(log.size_bytes for log in component.logs.values())
                elif isinstance(component, StoreServer):
                    memory_bytes += component.kv.bytes_stored + component.tables.bytes_stored
                elif isinstance(component, StreamingContext):
                    memory_bytes += 0.1 * component.config.executor.executor_memory
        memory_percent = min(100.0, 100.0 * memory_bytes / self.server.memory_bytes)
        return ResourceSample(time=now, cpu_percent=cpu, memory_percent=memory_percent)
