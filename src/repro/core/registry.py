"""Registry of stream processing applications.

The ``streamProcCfg`` document names the application a stream processing node
runs (``app: word-count.py`` in the paper's example).  Applications register a
builder function here; the component factory looks the name up when deploying
the node.  A builder receives the node's :class:`StreamingContext`, its
:class:`SPEAppConfig` and the owning :class:`Emulation` and wires the DStream
pipeline (sources, operators, sinks).
"""

from __future__ import annotations

from typing import Callable, Dict, List

AppBuilder = Callable[..., object]

_APPS: Dict[str, AppBuilder] = {}


def register_app(name: str, builder: AppBuilder) -> None:
    """Register (or replace) an application builder under ``name``."""
    _APPS[_normalize(name)] = builder


def app_builder(name: str) -> AppBuilder:
    """Look up a registered application builder."""
    normalized = _normalize(name)
    if normalized not in _APPS:
        _ensure_builtin_apps()
    if normalized not in _APPS:
        raise KeyError(
            f"unknown stream processing application {name!r}; "
            f"registered apps: {sorted(_APPS)}"
        )
    return _APPS[normalized]


def registered_apps() -> List[str]:
    _ensure_builtin_apps()
    return sorted(_APPS)


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "_").replace(".py", "")


def _ensure_builtin_apps() -> None:
    """Import the bundled applications so that they self-register."""
    try:
        import repro.apps  # noqa: F401  (import side effect registers apps)
    except ImportError:  # pragma: no cover - apps package always ships
        pass
