"""stream2gym core: the high-level prototyping interface.

This package is the reproduction of the paper's primary contribution: a
high-level, declarative interface for describing a distributed stream
processing pipeline (components + configuration + network topology) and an
orchestrator that deploys it onto the emulation substrates, runs it under
configurable operational conditions (link delays, bandwidth limits, failures)
and collects monitoring data.

The workflow mirrors Figure 1 of the paper:

1. the user writes a *task description* — either a GraphML file using the
   Table I attributes or a programmatic :class:`TaskDescription`;
2. :class:`Emulation` instantiates the network, starts the event streaming
   platform, deploys stream processors / data stores / producer and consumer
   stubs, and arms the fault injector;
3. monitoring tasks log bandwidth, latency and application events, and the
   visualization module turns them into the figures reported in the paper.
"""

from repro.core.attributes import (
    ConsumerType,
    GraphAttribute,
    LinkAttribute,
    NodeAttribute,
    ProducerType,
    StoreType,
    StreamProcType,
)
from repro.core.configs import (
    BrokerNodeConfig,
    ConsumerStubConfig,
    FaultSpec,
    ProducerStubConfig,
    SPEAppConfig,
    StoreNodeConfig,
    TopicSpec,
    load_yaml_file,
)
from repro.core.emulation import Emulation, EmulationResult
from repro.core.graphml import parse_graphml, parse_graphml_string
from repro.core.task import LinkDescription, NodeDescription, TaskDescription
from repro.core.monitoring import EventLog, LatencyTracker
from repro.core.resources import HostResourceModel, ResourceReport
from repro.core.visualization import (
    DeliveryMatrix,
    cdf,
    delivery_matrix,
    latency_by_arrival,
    throughput_timeseries,
)

__all__ = [
    "Emulation",
    "EmulationResult",
    "TaskDescription",
    "NodeDescription",
    "LinkDescription",
    "parse_graphml",
    "parse_graphml_string",
    "GraphAttribute",
    "NodeAttribute",
    "LinkAttribute",
    "ProducerType",
    "ConsumerType",
    "StreamProcType",
    "StoreType",
    "TopicSpec",
    "FaultSpec",
    "ProducerStubConfig",
    "ConsumerStubConfig",
    "SPEAppConfig",
    "BrokerNodeConfig",
    "StoreNodeConfig",
    "load_yaml_file",
    "EventLog",
    "LatencyTracker",
    "HostResourceModel",
    "ResourceReport",
    "DeliveryMatrix",
    "delivery_matrix",
    "latency_by_arrival",
    "throughput_timeseries",
    "cdf",
]
