"""Visualization data: the series behind the paper's figures.

stream2gym renders plots with Matplotlib; the reproduction keeps the
visualization layer dependency-free by producing the *data* for each figure
(delivery matrices, latency-vs-arrival-order series, throughput time series,
CDFs) plus simple text renderings that tests, examples and the benchmark
harness print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.broker.consumer import Consumer
from repro.broker.producer import Producer
from repro.network.stats import BandwidthSeries


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return (value, cumulative fraction) points for a CDF plot."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Simple nearest-rank percentile."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must lie in [0, 1]")
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class DeliveryMatrix:
    """Figure 6b: per-message delivery status at each consumer.

    ``matrix[consumer_name][i]`` is True when message ``i`` (in production
    order, restricted to one producer) was delivered to that consumer.
    """

    producer: str
    message_keys: List[Any] = field(default_factory=list)
    matrix: Dict[str, List[bool]] = field(default_factory=dict)

    @property
    def n_messages(self) -> int:
        return len(self.message_keys)

    def delivery_rate(self, consumer: str) -> float:
        row = self.matrix.get(consumer, [])
        if not row:
            return 0.0
        return sum(row) / len(row)

    def lost_indices(self, consumer: str) -> List[int]:
        return [index for index, ok in enumerate(self.matrix.get(consumer, [])) if not ok]

    def lost_anywhere(self) -> List[int]:
        lost = set()
        for consumer in self.matrix:
            lost.update(self.lost_indices(consumer))
        return sorted(lost)

    def render_text(self, width: int = 80) -> str:
        """Coarse ASCII rendering: one row per consumer, '.' delivered, 'X' lost."""
        if not self.message_keys:
            return "(no messages)"
        lines = []
        bucket = max(1, self.n_messages // width)
        for consumer, row in sorted(self.matrix.items()):
            cells = []
            for start in range(0, len(row), bucket):
                window = row[start:start + bucket]
                cells.append("." if all(window) else "X")
            lines.append(f"{consumer:>20} |{''.join(cells)}|")
        return "\n".join(lines)


def delivery_matrix(
    producer: Producer,
    consumers: Iterable[Consumer],
    topic: Optional[str] = None,
) -> DeliveryMatrix:
    """Build the Figure 6b matrix for one producer against a set of consumers."""
    reports = [
        report
        for report in producer.reports
        if topic is None or report.topic == topic
    ]
    keys = [report.key for report in reports]
    result = DeliveryMatrix(producer=producer.name, message_keys=keys)
    for consumer in consumers:
        delivered = set(
            record.key for record in consumer.received
            if topic is None or record.topic == topic
        )
        result.matrix[consumer.name] = [key in delivered for key in keys]
    return result


@dataclass
class LatencyPoint:
    """One point of the Figure 6c series."""

    order: int
    latency: float
    topic: str


def latency_by_arrival(consumer: Consumer, topics: Optional[List[str]] = None) -> List[LatencyPoint]:
    """Figure 6c: per-message latency ordered by receive time, labelled by topic."""
    records = [
        record for record in consumer.received
        if topics is None or record.topic in topics
    ]
    records.sort(key=lambda record: record.received_at)
    return [
        LatencyPoint(order=index, latency=record.latency, topic=record.topic)
        for index, record in enumerate(records)
    ]


def latency_spikes(points: List[LatencyPoint], threshold: float) -> Dict[str, int]:
    """Count, per topic, how many messages exceeded a latency threshold."""
    spikes: Dict[str, int] = {}
    for point in points:
        if point.latency > threshold:
            spikes[point.topic] = spikes.get(point.topic, 0) + 1
    return spikes


def throughput_timeseries(series: BandwidthSeries) -> List[Tuple[float, float]]:
    """Figure 6d: (time, tx Mbps) points for one host."""
    return [(sample.time, sample.tx_mbps) for sample in series]


def moving_average(points: Sequence[Tuple[float, float]], window: int = 5) -> List[Tuple[float, float]]:
    """Smooth a (time, value) series with a trailing moving average."""
    if window <= 0:
        raise ValueError("window must be positive")
    output = []
    values: List[float] = []
    for time, value in points:
        values.append(value)
        recent = values[-window:]
        output.append((time, sum(recent) / len(recent)))
    return output


def render_series_text(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    label: str = "",
) -> str:
    """Tiny ASCII sparkline of a (x, y) series (used by example scripts)."""
    if not points:
        return f"{label}: (empty)"
    values = [value for _, value in points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    blocks = " .:-=+*#%@"
    stride = max(1, len(values) // width)
    sampled = values[::stride][:width]
    chars = [blocks[int((value - low) / span * (len(blocks) - 1))] for value in sampled]
    return f"{label} [{low:.2f}..{high:.2f}] {''.join(chars)}"


def summarize_distribution(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p95 / max summary used across experiment reports."""
    ordered = sorted(values)
    if not ordered:
        return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
    # Clamp against float rounding: sum()/n can land 1 ulp outside [min, max].
    mean = min(max(sum(ordered) / len(ordered), ordered[0]), ordered[-1])
    return {
        "count": len(ordered),
        "mean": mean,
        "median": percentile(ordered, 0.5),
        "p95": percentile(ordered, 0.95),
        "max": ordered[-1],
    }
