"""Data source (producer) stubs.

Each stub wraps a :class:`~repro.broker.producer.Producer` and drives it with
a particular ingestion pattern.  The patterns correspond to the stub
repository described in the paper: producing each line of a file, each file
of a directory, a constant random bitrate, or replaying timestamped items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.broker.cluster import BrokerCluster
from repro.broker.message import ProducerRecord
from repro.broker.producer import Producer, ProducerConfig
from repro.core.configs import ProducerStubConfig
from repro.network.packet import estimate_size


class ProducerStub:
    """Base class: owns the underlying producer client and common accounting."""

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        config: Optional[ProducerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.host_name = host_name
        self.config = config or ProducerStubConfig()
        self.name = name or f"{type(self).__name__}-{host_name}"
        # Transactional ids must be unique per producer instance (a shared id
        # would fence sibling stubs), so a scenario-level id is suffixed with
        # the stub's own name.
        transactional_id = (
            f"{self.config.transactional_id}-{self.name}"
            if self.config.transactional_id
            else None
        )
        self.producer: Producer = cluster.create_producer(
            host_name,
            config=ProducerConfig(
                buffer_memory=self.config.buffer_memory,
                request_timeout=self.config.request_timeout,
                acks=self.config.acks,
                idempotence=self.config.idempotence,
                transactional_id=transactional_id,
            ),
            name=f"{self.name}-producer",
        )
        self.messages_produced = 0
        self.bytes_produced = 0
        self.transactions_committed = 0
        self._txn_pending = 0
        self.running = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.producer.start()
        self.sim.process(self._driver(), name=f"{self.name}:driver")

    def _driver(self):
        yield from self._run()
        yield from self._txn_finish()

    def stop(self) -> None:
        self.running = False

    def _run(self):
        raise NotImplementedError
        yield  # pragma: no cover

    # -- helpers -------------------------------------------------------------------
    def _send(self, topic: str, value: Any, key: Any = None, size: Optional[int] = None):
        key_field = self.config.key_field
        if key_field is not None and isinstance(value, dict) and key_field in value:
            # Entity-stable keys (flow id, account id, ...) so keyed hash
            # partitioning keeps one entity's records on one partition.
            key = value[key_field]
        record = ProducerRecord(
            topic=topic,
            value=value,
            key=key,
            size=size if size is not None else estimate_size(value),
        )
        if self.config.transactional_id and not self.producer.in_transaction():
            self.producer.begin_transaction()
        self.messages_produced += 1
        self.bytes_produced += record.size
        future = self.producer.send(record)
        if self.config.transactional_id:
            self._txn_pending += 1
        return future

    def _txn_pulse(self):
        """Generator: commit the open transaction every ``transaction_batch``
        sends.  A no-op (no simulation events) without a transactional id, so
        non-transactional runs stay event-for-event identical."""
        if not self.config.transactional_id:
            return
        if self._txn_pending >= self.config.transaction_batch:
            yield from self._txn_commit()

    def _txn_finish(self):
        """Generator: commit whatever the driver left open when it finished."""
        if self.config.transactional_id and self.producer.in_transaction():
            yield from self._txn_commit()

    def _txn_commit(self):
        from repro.broker.errors import DeliveryFailed, ProducerFencedError

        self._txn_pending = 0
        try:
            yield from self.producer.commit_transaction()
            self.transactions_committed += 1
        except DeliveryFailed:
            # The transaction aborted (some record failed); the stub keeps
            # producing — the next send begins a fresh transaction.
            pass
        except ProducerFencedError:
            # A successor took over this transactional id: this instance is
            # permanently dead.
            self.running = False


class SFSTProducerStub(ProducerStub):
    """Single File Single Topic: produce each element of one "file" to a topic.

    The file contents are provided as a list of items (the workload generators
    in :mod:`repro.workloads` create them); ``totalMessages`` truncates or
    cycles the list, and ``messagesPerSecond`` paces the production.
    """

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        items: Sequence[Any],
        config: Optional[ProducerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(cluster, host_name, config, name)
        self.items = list(items)

    def _run(self):
        yield self.sim.timeout(self.config.start_delay)
        total = self.config.total_messages or len(self.items)
        rate = self.config.messages_per_second
        interval = (1.0 / rate) if rate else 0.0
        for index in range(total):
            if not self.running:
                return
            item = self.items[index % len(self.items)] if self.items else index
            self._send(self.config.topic, item, key=index)
            yield from self._txn_pulse()
            if interval > 0:
                yield self.sim.timeout(interval)
            else:
                # Produce as fast as possible but still yield to the scheduler.
                yield self.sim.timeout(1e-4)


class DirectoryProducerStub(ProducerStub):
    """Produce each file of a directory as one message (word-count ingestion)."""

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        files: Sequence[Tuple[str, Any]],
        config: Optional[ProducerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(cluster, host_name, config, name)
        self.files = list(files)

    def _run(self):
        yield self.sim.timeout(self.config.start_delay)
        rate = self.config.messages_per_second
        interval = (1.0 / rate) if rate else 0.0
        total = self.config.total_messages or len(self.files)
        for index in range(total):
            if not self.running:
                return
            file_name, contents = self.files[index % len(self.files)]
            self._send(self.config.topic, contents, key=file_name)
            yield from self._txn_pulse()
            if interval > 0:
                yield self.sim.timeout(interval)
            else:
                yield self.sim.timeout(1e-4)


class RandomRateProducerStub(ProducerStub):
    """Produce synthetic payloads at a constant bitrate across one or more topics.

    This is the producer used in the Figure 6/9 scenarios: each site injects
    data at 30 Kbps, randomly spread over the configured topics.
    """

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        config: Optional[ProducerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(cluster, host_name, config, name)
        self._rng = self.sim.rng(f"random-producer:{self.name}")
        self._sequence = 0

    def _run(self):
        yield self.sim.timeout(self.config.start_delay)
        size = self.config.message_size
        rate_kbps = self.config.rate_kbps or 30.0
        bytes_per_second = rate_kbps * 1000.0 / 8.0
        interval = size / bytes_per_second
        topics = self.config.all_topics
        total = self.config.total_messages
        while self.running and (total is None or self.messages_produced < total):
            topic = topics[self._rng.randint(0, len(topics) - 1)]
            key = f"{self.host_name}:{self._sequence}"
            self._sequence += 1
            self._send(topic, {"seq": key, "host": self.host_name}, key=key, size=size)
            yield from self._txn_pulse()
            yield self.sim.timeout(self._rng.jitter(interval, 0.05))


class ReplayProducerStub(ProducerStub):
    """Replay (delay, value) items, preserving their relative timing."""

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        timeline: Iterable[Tuple[float, Any]],
        config: Optional[ProducerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(cluster, host_name, config, name)
        self.timeline = sorted(timeline, key=lambda item: item[0])

    def _run(self):
        yield self.sim.timeout(self.config.start_delay)
        previous = 0.0
        for index, (at, value) in enumerate(self.timeline):
            if not self.running:
                return
            gap = max(0.0, at - previous)
            previous = at
            if gap > 0:
                yield self.sim.timeout(gap)
            self._send(self.config.topic, value, key=index)
            yield from self._txn_pulse()
