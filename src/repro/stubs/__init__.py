"""Producer and consumer stubs.

stream2gym ships a repository of standard data source / data sink stubs so
that developers can ingest data into (and extract data from) their pipelines
without writing client code.  The reproduction provides the same stubs as
library classes: file-replay and directory producers, constant-bitrate random
producers, and standard / file / store-backed consumers.
"""

from repro.stubs.producers import (
    DirectoryProducerStub,
    RandomRateProducerStub,
    ReplayProducerStub,
    SFSTProducerStub,
)
from repro.stubs.consumers import (
    FileSinkConsumerStub,
    StandardConsumerStub,
    StoreSinkConsumerStub,
)

__all__ = [
    "SFSTProducerStub",
    "DirectoryProducerStub",
    "RandomRateProducerStub",
    "ReplayProducerStub",
    "StandardConsumerStub",
    "FileSinkConsumerStub",
    "StoreSinkConsumerStub",
]
