"""Data sink (consumer) stubs."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.broker.cluster import BrokerCluster
from repro.broker.consumer import Consumer, ConsumerConfig, ConsumerRecord
from repro.core.configs import ConsumerStubConfig
from repro.store.server import StoreClient


class ConsumerStub:
    """Base class for data sinks: owns a consumer client and latency accounting."""

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        config: Optional[ConsumerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.host_name = host_name
        self.config = config or ConsumerStubConfig()
        self.name = name or f"{type(self).__name__}-{host_name}"
        self.consumer: Consumer = cluster.create_consumer(
            host_name,
            config=ConsumerConfig(
                poll_interval=self.config.poll_interval,
                keep_payloads=self.config.keep_payloads,
                isolation_level=self.config.isolation_level,
            ),
            name=f"{self.name}-consumer",
            on_record=self._on_record,
        )
        self.consumer.subscribe(self.config.topics)
        self.messages_consumed = 0
        self.latencies: List[float] = []
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self.config.start_delay > 0:
            self.sim.schedule_callback(
                self.config.start_delay, self.consumer.start, name=f"{self.name}:start"
            )
        else:
            self.consumer.start()

    def stop(self) -> None:
        self.running = False
        self.consumer.stop()

    def _on_record(self, record: ConsumerRecord) -> None:
        self.messages_consumed += 1
        self.latencies.append(record.latency)
        self.handle(record)

    def handle(self, record: ConsumerRecord) -> None:
        """Subclass hook: what to do with each record."""

    # -- metrics --------------------------------------------------------------------
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def max_latency(self) -> float:
        return max(self.latencies, default=0.0)


class StandardConsumerStub(ConsumerStub):
    """The default data sink: record everything, compute delivery metrics."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.records: List[ConsumerRecord] = []

    def handle(self, record: ConsumerRecord) -> None:
        if self.config.keep_payloads:
            self.records.append(record)

    def received_keys(self, topic: Optional[str] = None) -> List[Any]:
        return [
            record.key
            for record in self.records
            if topic is None or record.topic == topic
        ]


class FileSinkConsumerStub(ConsumerStub):
    """Append consumed payloads to an in-memory file image (one list per topic)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.files: Dict[str, List[Any]] = {}

    def handle(self, record: ConsumerRecord) -> None:
        self.files.setdefault(record.topic, []).append(record.value)

    def lines(self, topic: str) -> List[Any]:
        return list(self.files.get(topic, []))


class StoreSinkConsumerStub(ConsumerStub):
    """Forward each consumed message into an external data store."""

    def __init__(
        self,
        cluster: BrokerCluster,
        host_name: str,
        config: Optional[ConsumerStubConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(cluster, host_name, config, name)
        if not self.config.store_host:
            raise ValueError("StoreSinkConsumerStub requires storeHost in its config")
        self.store_client = StoreClient(
            cluster.network.host(host_name), store_host=self.config.store_host
        )

    def handle(self, record: ConsumerRecord) -> None:
        key = record.key if record.key is not None else f"{record.topic}-{record.offset}"
        self.store_client.put_async(self.config.store_table, key, record.value)
