"""Operator implementations for the DStream DAG.

Operators are pure objects: given the list of :class:`StreamRecord` elements
of the current micro-batch (and, for stateful operators, their private
state), they return the transformed list.  The engine charges CPU time per
processed element separately (see :mod:`repro.engine.executor`), keeping the
functional logic here deterministic and easily unit-testable.

Size-carry: every derivation goes through ``StreamRecord.with_value``, which
defers re-sizing of the new value until a sink or the batch accounting
actually observes it (see :mod:`repro.engine.records`).  Operators therefore
never trigger ``estimate_size`` themselves — an n-stage pipeline sizes each
record at most once, at ingest or at the observation point, not per hop.

Columnar kernels
----------------
Operators with a whole-column implementation additionally define
``apply_columns(cols, now)`` taking and returning a
:class:`~repro.engine.columns.ColumnBatch`.  The record-path ``apply`` is
the semantic reference: a kernel must emit exactly the rows ``apply`` would
emit, in the same order, with the same values/keys/provenance and the same
size-carry behaviour (see ``ColumnBatch.derive``), so seeded traces are
bitwise identical on either path.  :func:`columnar_kernel` resolves an
operator's kernel — and deliberately refuses one for a subclass that
re-implemented ``apply`` without a matching kernel, so user-supplied
operators fall back to the record path instead of silently running stale
inherited columnar semantics (see ``docs/vectorized_engine.md``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.columns import ColumnBatch
from repro.engine.records import StreamRecord


def columnar_kernel(operator: "Operator"):
    """The operator's columnar kernel (bound method), or None for record path.

    A kernel is valid only when the class that defines ``apply_columns`` is
    the same class (or a superclass-of-neither situation) as the one defining
    ``apply``: a subclass that overrides ``apply`` deeper in the MRO than its
    inherited kernel has changed record-path semantics the kernel knows
    nothing about, so it must fall back.
    """
    cls = type(operator)
    if getattr(cls, "apply_columns", None) is None:
        return None
    kernel_owner = next(k for k in cls.__mro__ if "apply_columns" in vars(k))
    apply_owner = next(k for k in cls.__mro__ if "apply" in vars(k))
    if apply_owner is not kernel_owner and issubclass(apply_owner, kernel_owner):
        return None
    return operator.apply_columns


class Operator:
    """Base operator: stateless identity."""

    name = "identity"

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        return batch

    def reset(self) -> None:
        """Clear any operator state (used between experiment repetitions)."""


class MapOperator(Operator):
    """Element-wise transformation of the record value."""

    name = "map"

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        return [record.with_value(self.fn(record.value)) for record in batch]

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        fn = self.fn
        return cols.derive([fn(value) for value in cols.values])


class FlatMapOperator(Operator):
    """Expand each element into zero or more elements."""

    name = "flat_map"

    def __init__(self, fn: Callable[[Any], List[Any]]) -> None:
        self.fn = fn

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        output: List[StreamRecord] = []
        for record in batch:
            for value in self.fn(record.value):
                output.append(record.with_value(value))
        return output

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        fn = self.fn
        in_keys = cols.keys
        in_event = cols.event_times
        in_ingest = cols.ingest_times
        in_sizes = cols.sizes
        values: List[Any] = []
        keys: List[Any] = []
        event_times: List[float] = []
        ingest_times: List[float] = []
        sizes: List[Optional[int]] = []
        for index, value in enumerate(cols.values):
            expanded = fn(value)
            if not expanded:
                continue
            key = in_keys[index]
            event_time = in_event[index]
            ingest_time = in_ingest[index]
            parent_size = in_sizes[index]
            for out_value in expanded:
                values.append(out_value)
                keys.append(key)
                event_times.append(event_time)
                ingest_times.append(ingest_time)
                # Expansions re-emitting the parent payload share its observed
                # size state instead of re-estimating per expansion.
                sizes.append(parent_size if out_value is value else None)
        return ColumnBatch(values, keys, event_times, ingest_times, sizes)


class FilterOperator(Operator):
    """Keep only elements whose value satisfies the predicate."""

    name = "filter"

    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self.predicate = predicate

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        return [record for record in batch if self.predicate(record.value)]

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        predicate = self.predicate
        keep = [index for index, value in enumerate(cols.values) if predicate(value)]
        if len(keep) == len(cols.values):
            return cols
        return cols.take(keep)


class MapPairsOperator(Operator):
    """Turn each element into a (key, value) pair; the key drives later grouping."""

    name = "map_pairs"

    def __init__(self, fn: Callable[[Any], Tuple[Any, Any]]) -> None:
        self.fn = fn

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        output = []
        for record in batch:
            key, value = self.fn(record.value)
            output.append(record.with_value(value, key=key))
        return output

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        fn = self.fn
        in_keys = cols.keys
        keys: List[Any] = []
        values: List[Any] = []
        for index, in_value in enumerate(cols.values):
            key, value = fn(in_value)
            # with_value semantics: a None key keeps the record's old key.
            keys.append(key if key is not None else in_keys[index])
            values.append(value)
        return cols.derive(values, keys=keys)


class RepartitionByKeyOperator(Operator):
    """Regroup the batch by record key (the in-engine shuffle stage).

    When records arrive interleaved from several topic partitions (the
    sharded ingest plane), this operator groups them so all records of one
    key are contiguous, in first-seen key order, each group in arrival order.
    Because keyed producers route a key to exactly one partition and
    partition order is FIFO, the per-key sequence after repartitioning equals
    the per-key produce order — per-key order survives sharding.
    """

    name = "repartition_by_key"

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        groups: Dict[Any, List[StreamRecord]] = {}
        for record in batch:
            group = groups.get(record.key)
            if group is None:
                groups[record.key] = [record]
            else:
                group.append(record)
        if len(groups) <= 1:
            return batch
        output: List[StreamRecord] = []
        for group in groups.values():
            output.extend(group)
        return output


class ReduceByKeyOperator(Operator):
    """Combine the values of each key within the micro-batch."""

    name = "reduce_by_key"

    def __init__(self, fn: Callable[[Any, Any], Any]) -> None:
        self.fn = fn

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        # Fold values directly while grouping: no per-key record lists.
        fn = self.fn
        accumulators: Dict[Any, Any] = {}
        representatives: Dict[Any, StreamRecord] = {}
        for record in batch:
            key = record.key
            if key in accumulators:
                accumulators[key] = fn(accumulators[key], record.value)
            else:
                accumulators[key] = record.value
                representatives[key] = record
        return [
            representatives[key].with_value(value, key=key)
            for key, value in accumulators.items()
        ]

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        fn = self.fn
        values = cols.values
        accumulators: Dict[Any, Any] = {}
        rep_indices: Dict[Any, int] = {}
        for index, key in enumerate(cols.keys):
            if key in accumulators:
                accumulators[key] = fn(accumulators[key], values[index])
            else:
                accumulators[key] = values[index]
                rep_indices[key] = index
        representatives = cols.take(list(rep_indices.values()))
        return representatives.derive(
            list(accumulators.values()), keys=list(accumulators.keys())
        )


class GroupByKeyOperator(Operator):
    """Collect all values of each key within the batch into a list."""

    name = "group_by_key"

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        grouped: Dict[Any, List[Any]] = {}
        representatives: Dict[Any, StreamRecord] = {}
        for record in batch:
            key = record.key
            if key in grouped:
                grouped[key].append(record.value)
            else:
                grouped[key] = [record.value]
                representatives[key] = record
        return [
            representatives[key].with_value(values, key=key)
            for key, values in grouped.items()
        ]

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        values = cols.values
        grouped: Dict[Any, List[Any]] = {}
        rep_indices: Dict[Any, int] = {}
        for index, key in enumerate(cols.keys):
            if key in grouped:
                grouped[key].append(values[index])
            else:
                grouped[key] = [values[index]]
                rep_indices[key] = index
        representatives = cols.take(list(rep_indices.values()))
        return representatives.derive(list(grouped.values()), keys=list(grouped.keys()))


class WindowOperator(Operator):
    """Sliding window over wall-clock (simulation) time.

    Keeps every element younger than ``window_duration`` and emits the whole
    window on each batch.  A ``slide`` larger than the batch interval means
    the window is only emitted every ``slide`` seconds (empty output in
    between), matching Spark's ``window(windowDuration, slideDuration)``.
    """

    name = "window"

    def __init__(self, window_duration: float, slide: Optional[float] = None) -> None:
        if window_duration <= 0:
            raise ValueError("window_duration must be positive")
        self.window_duration = window_duration
        self.slide = slide
        self._buffer: deque = deque()
        #: Columnar window state: ``(arrival, ColumnBatch)`` chunks.  Every
        #: record of one ``apply_columns`` call shares the same arrival time,
        #: so chunk-granular eviction is exactly the record path's per-record
        #: eviction.  A given operator instance runs one path per run (the
        #: chain's execution plan is static), so the two buffers never mix.
        self._cbuffer: deque = deque()
        self._last_emit: float = float("-inf")

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        for record in batch:
            self._buffer.append((now, record))
        cutoff = now - self.window_duration
        while self._buffer and self._buffer[0][0] < cutoff:
            self._buffer.popleft()
        if self.slide is not None and now - self._last_emit < self.slide:
            return []
        self._last_emit = now
        return [record for _, record in self._buffer]

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        if len(cols):
            self._cbuffer.append((now, cols))
        cutoff = now - self.window_duration
        while self._cbuffer and self._cbuffer[0][0] < cutoff:
            self._cbuffer.popleft()
        if self.slide is not None and now - self._last_emit < self.slide:
            return ColumnBatch()
        self._last_emit = now
        if not self._cbuffer:
            return ColumnBatch()
        return ColumnBatch.concat([chunk for _, chunk in self._cbuffer])

    def reset(self) -> None:
        self._buffer.clear()
        self._cbuffer.clear()
        self._last_emit = float("-inf")


class UpdateStateByKeyOperator(Operator):
    """Stateful aggregation across batches (Spark's ``updateStateByKey``).

    ``fn(new_values, previous_state)`` returns the new state for the key; the
    operator emits one element per key whose state changed in this batch.
    """

    name = "update_state_by_key"

    def __init__(self, fn: Callable[[List[Any], Any], Any]) -> None:
        self.fn = fn
        self.state: Dict[Any, Any] = {}

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        grouped: Dict[Any, List[Any]] = {}
        representatives: Dict[Any, StreamRecord] = {}
        for record in batch:
            key = record.key
            if key in grouped:
                grouped[key].append(record.value)
            else:
                grouped[key] = [record.value]
                representatives[key] = record
        output = []
        for key, values in grouped.items():
            new_state = self.fn(values, self.state.get(key))
            self.state[key] = new_state
            output.append(representatives[key].with_value(new_state, key=key))
        return output

    def apply_columns(self, cols: ColumnBatch, now: float) -> ColumnBatch:
        values = cols.values
        grouped: Dict[Any, List[Any]] = {}
        rep_indices: Dict[Any, int] = {}
        for index, key in enumerate(cols.keys):
            if key in grouped:
                grouped[key].append(values[index])
            else:
                grouped[key] = [values[index]]
                rep_indices[key] = index
        fn = self.fn
        state = self.state
        new_states = []
        for key, key_values in grouped.items():
            new_state = fn(key_values, state.get(key))
            state[key] = new_state
            new_states.append(new_state)
        representatives = cols.take(list(rep_indices.values()))
        return representatives.derive(new_states, keys=list(grouped.keys()))

    def reset(self) -> None:
        self.state.clear()


class JoinOperator(Operator):
    """Join this stream with another stream's current batch on the record key.

    The other stream's batch is provided by the engine at execution time via
    :meth:`set_right_batch`; output values are ``(left_value, right_value)``
    tuples, one per matching key pair.
    """

    name = "join"

    def __init__(self) -> None:
        self._right: List[StreamRecord] = []

    def set_right_batch(self, batch: List[StreamRecord]) -> None:
        self._right = batch

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        right_by_key: Dict[Any, List[Any]] = {}
        for record in self._right:
            right_by_key.setdefault(record.key, []).append(record.value)
        output = []
        for left in batch:
            right_values = right_by_key.get(left.key)
            if right_values:
                left_value = left.value
                for right_value in right_values:
                    output.append(
                        left.with_value((left_value, right_value), key=left.key)
                    )
        return output

    def reset(self) -> None:
        self._right = []


class ForEachOperator(Operator):
    """Side-effecting operator: call a function on every element, pass through."""

    name = "for_each"

    def __init__(self, fn: Callable[[StreamRecord], None]) -> None:
        self.fn = fn

    def apply(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        for record in batch:
            self.fn(record)
        return batch
