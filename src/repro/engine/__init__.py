"""Micro-batch stream processing engine (Apache Spark Streaming substitute).

The engine mirrors the subset of Spark Streaming that the paper's example
applications use:

* a :class:`StreamingContext` bound to a driver host, with a configurable
  micro-batch interval;
* DStream-style operator chaining (``map``, ``flat_map``, ``filter``,
  ``map_pairs``, ``reduce_by_key``, ``window``, ``join``,
  ``update_state_by_key``, ``for_each``);
* receivers that ingest records from the event streaming platform
  (:class:`KafkaSource`) and sinks that write back to it, to data stores or
  to in-memory collections;
* an executor cost model that charges per-record processing time to the
  host's CPU, so job runtimes scale with input volume and saturate with core
  count — the behaviours Figures 5, 7a and 7b rely on;
* a vectorized operator plane (:mod:`repro.engine.columns`): micro-batches
  flow as :class:`ColumnBatch` columns from the broker fetch slice through
  columnar operator kernels to the sink, with per-record ``StreamRecord``
  materialization deferred until something actually demands records.  Both
  paths produce bitwise-identical simulated traces; see
  ``docs/vectorized_engine.md``.
"""

from repro.engine.columns import ColumnBatch
from repro.engine.context import (
    StreamingContext,
    StreamingConfig,
    default_engine_path,
    set_default_engine_path,
)
from repro.engine.dstream import DStream
from repro.engine.executor import ExecutorConfig
from repro.engine.operators import columnar_kernel
from repro.engine.sinks import KafkaSink, MemorySink, StoreSink
from repro.engine.sources import KafkaSource, MemorySource, MergingSource

__all__ = [
    "StreamingContext",
    "StreamingConfig",
    "ColumnBatch",
    "DStream",
    "ExecutorConfig",
    "KafkaSource",
    "MemorySource",
    "MergingSource",
    "KafkaSink",
    "MemorySink",
    "StoreSink",
    "columnar_kernel",
    "default_engine_path",
    "set_default_engine_path",
]
