"""Micro-batch stream processing engine (Apache Spark Streaming substitute).

The engine mirrors the subset of Spark Streaming that the paper's example
applications use:

* a :class:`StreamingContext` bound to a driver host, with a configurable
  micro-batch interval;
* DStream-style operator chaining (``map``, ``flat_map``, ``filter``,
  ``map_pairs``, ``reduce_by_key``, ``window``, ``join``,
  ``update_state_by_key``, ``for_each``);
* receivers that ingest records from the event streaming platform
  (:class:`KafkaSource`) and sinks that write back to it, to data stores or
  to in-memory collections;
* an executor cost model that charges per-record processing time to the
  host's CPU, so job runtimes scale with input volume and saturate with core
  count — the behaviours Figures 5, 7a and 7b rely on.
"""

from repro.engine.context import StreamingContext, StreamingConfig
from repro.engine.dstream import DStream
from repro.engine.executor import ExecutorConfig
from repro.engine.sinks import KafkaSink, MemorySink, StoreSink
from repro.engine.sources import KafkaSource, MemorySource, MergingSource

__all__ = [
    "StreamingContext",
    "StreamingConfig",
    "DStream",
    "ExecutorConfig",
    "KafkaSource",
    "MemorySource",
    "MergingSource",
    "KafkaSink",
    "MemorySink",
    "StoreSink",
]
