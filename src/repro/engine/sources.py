"""Input sources for the stream processing engine."""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from repro.broker.batch import RecordBatch
from repro.broker.consumer import Consumer, ConsumerConfig, ConsumerRecord
from repro.engine.columns import ColumnBatch
from repro.engine.records import StreamRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.cluster import BrokerCluster
    from repro.network.host import Host


class Source:
    """Base class: accumulates records until the driver drains a micro-batch."""

    #: True when ``drain_columns()`` is the native drain (no per-record
    #: materialization) — the context then feeds the columnar operator plane
    #: directly.  Sources that buffer ``StreamRecord`` objects leave this
    #: False and the engine uses the record path.
    supports_columns = False

    def __init__(self, name: str = "source") -> None:
        self.name = name
        self._pending: List[StreamRecord] = []
        self.records_ingested = 0

    def push(self, record: StreamRecord) -> None:
        self._pending.append(record)
        self.records_ingested += 1

    def drain(self) -> List[StreamRecord]:
        """Take every record accumulated since the previous micro-batch."""
        batch, self._pending = self._pending, []
        return batch

    def drain_columns(self) -> ColumnBatch:
        """Take the pending micro-batch as columns (bridge for record sources)."""
        return ColumnBatch.from_records(self.drain())

    @property
    def backlog(self) -> int:
        return len(self._pending)

    def start(self) -> None:
        """Begin ingesting (overridden by receiver-backed sources)."""

    def stop(self) -> None:
        """Stop ingesting."""


class MemorySource(Source):
    """A source fed directly by test or application code."""

    def push_value(self, value: Any, event_time: Optional[float] = None, now: float = 0.0) -> None:
        self.push(
            StreamRecord(
                value=value,
                event_time=event_time if event_time is not None else now,
                ingest_time=now,
            )
        )


class KafkaSource(Source):
    """A receiver that consumes records from the event streaming platform.

    Wraps a :class:`~repro.broker.consumer.Consumer` feeding the micro-batch
    buffer.  When no per-record ``value_from_record`` hook is needed, the
    consumer hands over whole :class:`RecordBatch` objects and the source
    decodes them straight into :class:`StreamRecord` elements — no
    intermediate ``ConsumerRecord`` (or dict) per message.  The original
    produce timestamp is preserved as the stream record's ``event_time`` so
    end-to-end latency can be measured after several pipeline stages.
    """

    def __init__(
        self,
        host: "Host",
        topics: List[str],
        bootstrap: List[str],
        consumer_config: Optional[ConsumerConfig] = None,
        name: Optional[str] = None,
        value_from_record=None,
        partitions: Optional[Sequence[int]] = None,
        group: Optional[str] = None,
    ) -> None:
        """``partitions`` statically assigns this source specific partitions of
        a single topic (one source instance per assigned partition is the
        sharded-ingest pattern — see :meth:`StreamingContext.sharded_kafka_stream`);
        ``group`` instead joins a coordinator-managed consumer group."""
        super().__init__(name=name or f"kafka-source-{host.name}")
        config = consumer_config or ConsumerConfig(keep_payloads=False)
        if group is not None:
            config = dataclasses.replace(config, group=group)
        if partitions is not None and len(topics) != 1:
            raise ValueError("a partition-assigned KafkaSource takes exactly one topic")
        self.value_from_record = value_from_record
        # The batch fast path only applies while nothing demands per-record
        # ConsumerRecord objects (custom value hook or kept payloads).
        batch_native = value_from_record is None and not config.keep_payloads
        self.supports_columns = batch_native
        #: Fused source→operator ingest: fetched wire batches accumulate here
        #: as columns (adopting the reply's slices zero-copy when possible)
        #: and flow into the columnar operator plane without ever becoming
        #: StreamRecord objects — unless ``drain()`` (the record path, or a
        #: join's right side) materializes them at the batch boundary.
        self._pending_columns = ColumnBatch()
        self.consumer = Consumer(
            host,
            bootstrap=bootstrap,
            config=config,
            name=f"{self.name}-consumer",
            on_record=None if batch_native else self._on_record,
            on_batch=self._on_wire_batch if batch_native else None,
        )
        self.consumer.subscribe(topics)
        if partitions is not None:
            self.consumer.assign(topics[0], list(partitions))
        self.host = host

    def _on_wire_batch(
        self,
        topic: str,
        partition: int,
        batch: RecordBatch,
        received_at: float,
        skip=None,
    ) -> None:
        """Accumulate one fetched batch as pending columns (no materialization).

        ``skip`` holds offsets the consumer marked invisible (transaction
        control markers and, under ``read_committed``, aborted records) —
        they ship inside the contiguous wire batch but must never enter the
        stream."""
        self.records_ingested += self._pending_columns.extend_from_wire(
            batch, received_at, skip
        )

    def drain(self) -> List[StreamRecord]:
        """Record-path drain: materialize the pending columns at the boundary."""
        if self.supports_columns:
            return self.drain_columns().to_records()
        return super().drain()

    def drain_columns(self) -> ColumnBatch:
        if not self.supports_columns:
            return super().drain_columns()
        columns, self._pending_columns = self._pending_columns, ColumnBatch()
        return columns

    @property
    def backlog(self) -> int:
        return len(self._pending) + len(self._pending_columns)

    def _on_record(self, record: ConsumerRecord) -> None:
        value = record.value
        if self.value_from_record is not None:
            value = self.value_from_record(record)
        self.push(
            StreamRecord(
                value=value,
                key=record.key,
                event_time=record.produced_at,
                ingest_time=self.host.sim.now,
                size=record.size,
            )
        )

    def start(self) -> None:
        self.consumer.start()

    def stop(self) -> None:
        self.consumer.stop()


class MergingSource(Source):
    """Deterministic merge of several child sources into one micro-batch feed.

    The partition-aware ingest plane runs one :class:`KafkaSource` per
    assigned partition; this façade presents them to the driver as a single
    source.  ``drain()`` concatenates the children's pending records *in
    child (partition) order*, so the merged micro-batch order is a pure
    function of the simulated fetch schedule — per-partition offset order is
    preserved within each child, and therefore per-key order survives
    sharding (a key always lives in exactly one partition).
    """

    def __init__(self, children: List[Source], name: str = "merging-source") -> None:
        super().__init__(name=name)
        self.children = list(children)
        self.supports_columns = all(child.supports_columns for child in children)

    def drain(self) -> List[StreamRecord]:
        merged: List[StreamRecord] = []
        for child in self.children:
            merged.extend(child.drain())
        self.records_ingested += len(merged)
        return merged

    def drain_columns(self) -> ColumnBatch:
        """Concatenate the children's pending columns in child (partition) order.

        Children relinquish their drained batches, so the merge adopts the
        first child's columns and extends them in place — the single-child
        (and single-fetch) case stays zero-copy end to end.
        """
        merged = ColumnBatch()
        for child in self.children:
            merged.extend(child.drain_columns())
        self.records_ingested += len(merged)
        return merged

    @property
    def backlog(self) -> int:
        return sum(child.backlog for child in self.children)

    def start(self) -> None:
        for child in self.children:
            child.start()

    def stop(self) -> None:
        for child in self.children:
            child.stop()


def kafka_source_for_cluster(
    cluster: "BrokerCluster",
    host_name: str,
    topics: List[str],
    consumer_config: Optional[ConsumerConfig] = None,
    partitions: Optional[Sequence[int]] = None,
    group: Optional[str] = None,
) -> KafkaSource:
    """Convenience constructor wiring a KafkaSource to a cluster's bootstrap list."""
    host = cluster.network.host(host_name)
    source = KafkaSource(
        host,
        topics=topics,
        bootstrap=cluster.bootstrap_hosts(prefer=host_name),
        consumer_config=consumer_config,
        partitions=partitions,
        group=group,
    )
    return source
