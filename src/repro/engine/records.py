"""Record type flowing through the stream processing engine."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.network.packet import estimate_size


@dataclass
class StreamRecord:
    """One element of a DStream.

    Attributes
    ----------
    value:
        The payload being processed (any Python object; operators replace it).
    key:
        Optional key (set by ``map_pairs`` / key-based operators).
    event_time:
        When the element was originally created at the data source.  This is
        preserved across operators and sinks so that end-to-end latency (the
        Figure 5 metric) can be measured at the end of a multi-stage pipeline.
    ingest_time:
        When the stream processing engine received the element.
    size:
        Approximate serialized size in bytes (used for network accounting
        when the element is re-published to the broker).
    """

    value: Any
    key: Any = None
    event_time: float = 0.0
    ingest_time: float = 0.0
    size: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = estimate_size(self.value)

    def with_value(self, value: Any, key: Any = None, resize: bool = True) -> "StreamRecord":
        """Derive a new record with the same provenance but a new payload."""
        return StreamRecord(
            value=value,
            key=key if key is not None else self.key,
            event_time=self.event_time,
            ingest_time=self.ingest_time,
            size=estimate_size(value) if resize else self.size,
        )

    def age(self, now: float) -> float:
        """Time since the element was created at its source."""
        return now - self.event_time
