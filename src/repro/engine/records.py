"""Record type flowing through the stream processing engine.

Size-carry rules
----------------
``size`` is needed only where it is *observed* — input-byte accounting at the
micro-batch boundary and re-publication through a Kafka sink.  The old code
re-ran :func:`~repro.network.packet.estimate_size` eagerly at every operator
hop (``with_value(resize=True)``), dominating pipeline cost.  Records now
carry sizes lazily:

* a record constructed with an explicit positive ``size`` (e.g. from a wire
  batch at ingest) keeps it verbatim — ``estimate_size`` never runs;
* a record constructed without a size estimates it **once**, on first read,
  and caches the result;
* ``with_value(resize=True)`` (the default) defers sizing of the new value —
  nothing is computed unless someone reads ``size`` downstream;
* ``with_value(resize=False)`` carries the parent's size through unchanged.

Observed values are byte-identical to the eager path (``estimate_size`` is a
pure function of the value), so simulated traces do not change — only the
number of times the estimator runs does: at most once per record, at the
point of observation, instead of once per hop.
"""

from __future__ import annotations

from typing import Any

from repro.network.packet import estimate_size


class StreamRecord:
    """One element of a DStream.

    Attributes
    ----------
    value:
        The payload being processed (any Python object; operators replace it).
    key:
        Optional key (set by ``map_pairs`` / key-based operators).
    event_time:
        When the element was originally created at the data source.  This is
        preserved across operators and sinks so that end-to-end latency (the
        Figure 5 metric) can be measured at the end of a multi-stage pipeline.
    ingest_time:
        When the stream processing engine received the element.
    size:
        Approximate serialized size in bytes (used for network accounting
        when the element is re-published to the broker).  Computed lazily —
        see the module docstring for the size-carry rules.
    """

    __slots__ = ("value", "key", "event_time", "ingest_time", "_size")

    def __init__(
        self,
        value: Any,
        key: Any = None,
        event_time: float = 0.0,
        ingest_time: float = 0.0,
        size: int = 0,
    ) -> None:
        self.value = value
        self.key = key
        self.event_time = event_time
        self.ingest_time = ingest_time
        self._size = size if size > 0 else None

    @property
    def size(self) -> int:
        if self._size is None:
            self._size = estimate_size(self.value)
        return self._size

    @size.setter
    def size(self, value: int) -> None:
        self._size = value if value > 0 else None

    def with_value(self, value: Any, key: Any = None, resize: bool = True) -> "StreamRecord":
        """Derive a new record with the same provenance but a new payload.

        ``resize=True`` (default) defers sizing of the new value until it is
        observed; ``resize=False`` carries this record's size through.  When
        the new value *is* this record's value (identity rewrite — e.g. a
        ``flat_map`` expansion re-emitting its parent's payload), the clone
        shares the parent's size state outright: same payload, same size,
        so observing either estimates at most once between them instead of
        once per expansion.
        """
        clone = StreamRecord.__new__(StreamRecord)
        clone.value = value
        clone.key = key if key is not None else self.key
        clone.event_time = self.event_time
        clone.ingest_time = self.ingest_time
        if not resize:
            clone._size = self.size
        else:
            clone._size = self._size if value is self.value else None
        return clone

    def age(self, now: float) -> float:
        """Time since the element was created at its source."""
        return now - self.event_time

    def __repr__(self) -> str:
        return (
            f"StreamRecord(value={self.value!r}, key={self.key!r}, "
            f"event_time={self.event_time}, ingest_time={self.ingest_time})"
        )
