"""Executor cost model.

Spark executes each micro-batch as a job split into tasks that run on
executor cores.  The emulation reproduces the *timing* of that execution on
the host's CPU model: processing ``n`` records through an operator chain of
depth ``d`` costs ``n * d * per_record_cost`` CPU-seconds (plus a fixed
per-job scheduling overhead), divided across ``parallelism`` tasks that each
occupy one core of the SPE host.  This is what makes job runtimes grow with
input volume (Figure 7b) and saturate when the host runs out of cores
(Figure 7a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.host import Host


@dataclass
class ExecutorConfig:
    """Cost-model parameters for one streaming context (``streamProcCfg``)."""

    #: Number of parallel tasks a job is split into (Spark default = cores).
    parallelism: int = 4
    #: Fixed driver/scheduler overhead charged once per job (seconds).
    job_overhead: float = 0.030
    #: CPU seconds charged per record per operator stage.
    per_record_cost: float = 25e-6
    #: CPU seconds charged per byte of input read into the job.
    per_byte_cost: float = 4e-9
    #: Executor memory in bytes (accounted by the resource model, Figure 9).
    executor_memory: int = 1024 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.job_overhead < 0 or self.per_record_cost < 0 or self.per_byte_cost < 0:
            raise ValueError("costs must be non-negative")

    def job_cost(self, n_records: int, n_bytes: int, n_stages: int) -> float:
        """Total CPU-seconds a job consumes across all its tasks."""
        stages = max(1, n_stages)
        return (
            self.job_overhead
            + n_records * stages * self.per_record_cost
            + n_bytes * self.per_byte_cost
        )


class Executor:
    """Runs jobs on a host, splitting work across parallel tasks."""

    def __init__(self, host: "Host", config: ExecutorConfig) -> None:
        self.host = host
        self.config = config
        self.jobs_run = 0
        self.busy_seconds = 0.0

    def run_job(self, n_records: int, n_bytes: int, n_stages: int):
        """Generator: execute one job's worth of CPU work and return its duration."""
        start = self.host.sim.now
        total_cost = self.config.job_cost(n_records, n_bytes, n_stages)
        tasks = min(self.config.parallelism, max(1, n_records))
        per_task = total_cost / tasks
        task_events = [
            self.host.sim.process(
                self.host.compute(per_task), name=f"executor-task-{index}"
            )
            for index in range(tasks)
        ]
        yield self.host.sim.all_of(task_events)
        duration = self.host.sim.now - start
        self.jobs_run += 1
        self.busy_seconds += total_cost
        return duration
