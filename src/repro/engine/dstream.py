"""DStream: a lazily-built chain of operators rooted at a source."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.engine.columns import ColumnBatch
from repro.engine.operators import (
    FilterOperator,
    FlatMapOperator,
    ForEachOperator,
    GroupByKeyOperator,
    JoinOperator,
    MapOperator,
    MapPairsOperator,
    Operator,
    ReduceByKeyOperator,
    RepartitionByKeyOperator,
    UpdateStateByKeyOperator,
    WindowOperator,
    columnar_kernel,
)
from repro.engine.records import StreamRecord
from repro.engine.sinks import CallbackSink, MemorySink, Sink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import StreamingContext
    from repro.engine.sources import Source


class DStream:
    """A stream of records flowing through a chain of operators.

    DStreams are built declaratively before ``StreamingContext.start()``; at
    run time the context executes each registered output stream once per
    micro-batch.  Every transformation returns a *new* DStream sharing the
    same source, mirroring Spark's immutable DStream lineage.
    """

    def __init__(
        self,
        context: "StreamingContext",
        source: "Source",
        operators: Optional[List[Operator]] = None,
        joined_with: Optional[Tuple["DStream", JoinOperator]] = None,
    ) -> None:
        self.context = context
        self.source = source
        self.operators: List[Operator] = list(operators or [])
        self.joined_with = joined_with
        self.sinks: List[Sink] = []
        #: Cached columnar execution plan (resolved once; the operator list
        #: is immutable after construction — transformations derive new
        #: DStreams).  See :meth:`_columnar_plan`.
        self._kernel_plan: Optional[List[Any]] = None

    # -- transformations -----------------------------------------------------------
    def _derive(self, operator: Operator) -> "DStream":
        return DStream(
            self.context,
            self.source,
            self.operators + [operator],
            joined_with=self.joined_with,
        )

    def map(self, fn: Callable[[Any], Any]) -> "DStream":
        """Transform each element's value."""
        return self._derive(MapOperator(fn))

    def flat_map(self, fn: Callable[[Any], List[Any]]) -> "DStream":
        """Expand each element into zero or more elements."""
        return self._derive(FlatMapOperator(fn))

    def filter(self, predicate: Callable[[Any], bool]) -> "DStream":
        """Keep only elements satisfying ``predicate``."""
        return self._derive(FilterOperator(predicate))

    def map_pairs(self, fn: Callable[[Any], Tuple[Any, Any]]) -> "DStream":
        """Produce (key, value) pairs for key-based operators."""
        return self._derive(MapPairsOperator(fn))

    def reduce_by_key(self, fn: Callable[[Any, Any], Any]) -> "DStream":
        """Combine values per key within each micro-batch."""
        return self._derive(ReduceByKeyOperator(fn))

    def repartition_by_key(self) -> "DStream":
        """Regroup interleaved multi-partition input by key (order-preserving)."""
        return self._derive(RepartitionByKeyOperator())

    def group_by_key(self) -> "DStream":
        """Collect the batch's values per key into lists."""
        return self._derive(GroupByKeyOperator())

    def window(self, window_duration: float, slide: Optional[float] = None) -> "DStream":
        """Sliding time window over the stream."""
        return self._derive(WindowOperator(window_duration, slide))

    def update_state_by_key(self, fn: Callable[[List[Any], Any], Any]) -> "DStream":
        """Stateful per-key aggregation across micro-batches."""
        return self._derive(UpdateStateByKeyOperator(fn))

    def join(self, other: "DStream") -> "DStream":
        """Join with another keyed stream within the current micro-batch."""
        join_operator = JoinOperator()
        joined = DStream(
            self.context,
            self.source,
            self.operators + [join_operator],
            joined_with=(other, join_operator),
        )
        return joined

    def for_each(self, fn: Callable[[StreamRecord], None]) -> "DStream":
        """Run a side effect on every element (pass-through)."""
        return self._derive(ForEachOperator(fn))

    # -- outputs ------------------------------------------------------------------------
    def to(self, sink: Sink) -> Sink:
        """Register a sink for this stream and mark it as an output stream."""
        self.sinks.append(sink)
        self.context.register_output(self)
        return sink

    def to_memory(self, name: str = "memory-sink", keep_records: bool = True) -> MemorySink:
        sink = MemorySink(name=name, keep_records=keep_records)
        self.to(sink)
        return sink

    def to_callback(self, fn: Callable[[StreamRecord, float], None]) -> CallbackSink:
        sink = CallbackSink(fn)
        self.to(sink)
        return sink

    def to_kafka(self, topic: str, producer_config=None, envelope: bool = True):
        """Publish this stream to a broker topic (requires a cluster-aware context)."""
        sink = self.context.kafka_sink(topic, producer_config=producer_config, envelope=envelope)
        self.to(sink)
        return sink

    # -- execution (called by the context) -------------------------------------------------
    @property
    def n_stages(self) -> int:
        return max(1, len(self.operators))

    def execute(self, batch: List[StreamRecord], now: float) -> List[StreamRecord]:
        """Run the operator chain over one micro-batch (pure computation)."""
        if self.joined_with is not None:
            other_stream, join_operator = self.joined_with
            other_batch = other_stream.execute(other_stream.source.drain(), now)
            join_operator.set_right_batch(other_batch)
        current = batch
        for operator in self.operators:
            current = operator.apply(current, now)
        return current

    def _columnar_plan(self) -> List[Any]:
        """Kernels for the longest columnar prefix of the operator chain.

        The chain executes columnar up to the first operator without a
        kernel, materializes there, and stays on the record path for the
        remainder — one static fallback point per chain, so every stateful
        operator sees exactly one representation for the whole run.
        """
        if self._kernel_plan is None:
            plan: List[Any] = []
            for operator in self.operators:
                kernel = columnar_kernel(operator)
                if kernel is None:
                    break
                plan.append(kernel)
            self._kernel_plan = plan
        return self._kernel_plan

    def execute_columns(self, cols: ColumnBatch, now: float):
        """Columnar execution: returns a ColumnBatch, or a record list after
        the chain's fallback point (the context handles either output)."""
        plan = self._columnar_plan()
        for kernel in plan:
            cols = kernel(cols, now)
        if len(plan) == len(self.operators):
            return cols
        current = cols.to_records()
        for operator in self.operators[len(plan):]:
            current = operator.apply(current, now)
        return current

    def reset_state(self) -> None:
        for operator in self.operators:
            operator.reset()
