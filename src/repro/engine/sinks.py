"""Output sinks for the stream processing engine."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.broker.message import ProducerRecord
from repro.broker.producer import Producer, ProducerConfig
from repro.engine.columns import ColumnBatch
from repro.engine.records import StreamRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.host import Host
    from repro.store.server import StoreClient


class Sink:
    """Base sink: receives the records emitted by a DStream every micro-batch.

    Sinks that can consume a :class:`~repro.engine.columns.ColumnBatch`
    without per-record ``StreamRecord`` objects set ``accepts_columns`` and
    override :meth:`write_columns`; the engine then defers materialization
    past the sink entirely.  Sinks with record granularity (user callbacks,
    store writers) leave it False — the engine materializes the output once
    and calls :meth:`write` as before.
    """

    accepts_columns = False

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.records_written = 0

    def write(self, batch: List[StreamRecord], now: float) -> None:
        self.records_written += len(batch)

    def write_columns(self, cols: ColumnBatch, now: float) -> None:
        """Columnar write entry point (fallback: materialize and delegate)."""
        self.write(cols.to_records(), now)

    def start(self) -> None:
        """Hook for sinks that own network clients."""

    def stop(self) -> None:
        """Hook for sinks that own network clients."""


class MemorySink(Sink):
    """Collects emitted records in memory (used by tests and local analysis)."""

    accepts_columns = True

    def __init__(self, name: str = "memory-sink", keep_records: bool = True) -> None:
        super().__init__(name=name)
        self.keep_records = keep_records
        self.results: List[StreamRecord] = []

    def write(self, batch: List[StreamRecord], now: float) -> None:
        super().write(batch, now)
        if self.keep_records:
            self.results.extend(batch)

    def write_columns(self, cols: ColumnBatch, now: float) -> None:
        # With keep_records off (the large-experiment mode) this is pure
        # header accounting — no record is ever materialized.
        self.records_written += len(cols)
        if self.keep_records:
            self.results.extend(cols.to_records())

    def values(self) -> List[Any]:
        return [record.value for record in self.results]

    def latest_by_key(self) -> dict:
        latest = {}
        for record in self.results:
            latest[record.key] = record.value
        return latest


class CallbackSink(Sink):
    """Invokes a user callback per emitted record (data-sink stub hook)."""

    def __init__(self, fn: Callable[[StreamRecord, float], None], name: str = "callback-sink") -> None:
        super().__init__(name=name)
        self.fn = fn

    def write(self, batch: List[StreamRecord], now: float) -> None:
        super().write(batch, now)
        for record in batch:
            self.fn(record, now)


class KafkaSink(Sink):
    """Publishes emitted records to a topic on the event streaming platform.

    The original ``event_time`` of each element is carried in the produced
    value envelope so that downstream pipeline stages (and the final data
    sink) can compute end-to-end latency across multiple topics.
    """

    def __init__(
        self,
        host: "Host",
        topic: str,
        bootstrap: List[str],
        producer_config: Optional[ProducerConfig] = None,
        name: Optional[str] = None,
        envelope: bool = True,
    ) -> None:
        super().__init__(name=name or f"kafka-sink-{topic}")
        self.topic = topic
        self.envelope = envelope
        self.producer = Producer(
            host,
            bootstrap=bootstrap,
            config=producer_config,
            name=f"{self.name}-producer",
        )

    def start(self) -> None:
        self.producer.start()

    def stop(self) -> None:
        self.producer.stop()

    accepts_columns = True

    def write(self, batch: List[StreamRecord], now: float) -> None:
        super().write(batch, now)
        for record in batch:
            value = record.value
            if self.envelope:
                value = {"value": record.value, "event_time": record.event_time}
            self.producer.send(
                ProducerRecord(
                    topic=self.topic,
                    key=record.key,
                    value=value,
                    size=max(record.size, 16),
                )
            )

    def write_columns(self, cols: ColumnBatch, now: float) -> None:
        """Publish straight from columns: same envelope, same size accounting."""
        self.records_written += len(cols)
        topic = self.topic
        envelope = self.envelope
        send = self.producer.send
        keys = cols.keys
        event_times = cols.event_times
        size_at = cols.size_at
        for index, value in enumerate(cols.values):
            if envelope:
                value = {"value": value, "event_time": event_times[index]}
            send(
                ProducerRecord(
                    topic=topic,
                    key=keys[index],
                    value=value,
                    size=max(size_at(index), 16),
                )
            )


class StoreSink(Sink):
    """Writes each emitted record into an external key-value / table store."""

    def __init__(
        self,
        client: "StoreClient",
        table: str = "results",
        name: Optional[str] = None,
        key_fn: Optional[Callable[[StreamRecord], Any]] = None,
    ) -> None:
        super().__init__(name=name or f"store-sink-{table}")
        self.client = client
        self.table = table
        self.key_fn = key_fn or (lambda record: record.key)

    def write(self, batch: List[StreamRecord], now: float) -> None:
        super().write(batch, now)
        for record in batch:
            self.client.put_async(self.table, self.key_fn(record), record.value)
