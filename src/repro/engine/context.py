"""The StreamingContext: driver, batch scheduler and job metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.broker.consumer import ConsumerConfig
from repro.broker.producer import ProducerConfig
from repro.engine.columns import ColumnBatch
from repro.engine.dstream import DStream
from repro.engine.executor import Executor, ExecutorConfig
from repro.engine.sinks import KafkaSink, Sink
from repro.engine.sources import KafkaSource, MemorySource, MergingSource, Source

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.cluster import BrokerCluster
    from repro.network.host import Host


#: Session-wide engine-path default: "columnar" runs the vectorized operator
#: plane wherever a context doesn't opt out, "record" forces per-record
#: execution everywhere (the CI matrix's ``--engine-path=record`` run).
_DEFAULT_ENGINE_PATH = "columnar"


def set_default_engine_path(path: str) -> None:
    """Set the session-wide engine path ("columnar" or "record")."""
    global _DEFAULT_ENGINE_PATH
    if path not in ("columnar", "record"):
        raise ValueError(f"unknown engine path {path!r}")
    _DEFAULT_ENGINE_PATH = path


def default_engine_path() -> str:
    return _DEFAULT_ENGINE_PATH


@dataclass
class StreamingConfig:
    """Context-level configuration (``streamProcCfg`` keys map onto these)."""

    batch_interval: float = 1.0
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    #: Stop scheduling new batches after this many (None = run forever).
    max_batches: Optional[int] = None
    #: Columnar operator plane: ``None`` follows the session default (see
    #: :func:`set_default_engine_path`), ``True``/``False`` pin this context
    #: to the columnar/record path regardless of it.  Either path produces
    #: bitwise-identical simulated traces and outputs; only wall-clock speed
    #: differs (see ``docs/vectorized_engine.md``).
    vectorized: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.batch_interval <= 0:
            raise ValueError("batch_interval must be positive")


@dataclass
class BatchMetric:
    """Execution record of one micro-batch job (one per output stream per batch)."""

    batch_time: float
    stream_index: int
    input_records: int
    input_bytes: int
    output_records: int
    processing_time: float
    scheduling_delay: float

    @property
    def total_delay(self) -> float:
        return self.processing_time + self.scheduling_delay


class StreamingContext:
    """A micro-batch stream processing engine bound to a driver host."""

    def __init__(
        self,
        host: "Host",
        config: Optional[StreamingConfig] = None,
        cluster: Optional["BrokerCluster"] = None,
        name: Optional[str] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.config = config or StreamingConfig()
        self.cluster = cluster
        self.name = name or f"spe-{host.name}"
        self.executor = Executor(host, self.config.executor)
        if self.config.vectorized is None:
            self.vectorized = _DEFAULT_ENGINE_PATH == "columnar"
        else:
            self.vectorized = self.config.vectorized
        self.sources: List[Source] = []
        self.output_streams: List[DStream] = []
        self.batch_metrics: List[BatchMetric] = []
        self.batches_run = 0
        self.running = False
        host.register_component(self)

    # -- stream construction ---------------------------------------------------------
    def memory_stream(self, name: str = "memory") -> DStream:
        """A stream fed programmatically (tests, file replay drivers)."""
        source = MemorySource(name=name)
        self.sources.append(source)
        return DStream(self, source)

    def kafka_stream(
        self,
        topics: List[str],
        consumer_config: Optional[ConsumerConfig] = None,
        value_from_record=None,
        partitions: Optional[List[int]] = None,
        group: Optional[str] = None,
    ) -> DStream:
        """A stream consuming from the event streaming platform.

        ``partitions`` statically assigns the stream specific partitions of a
        single topic; ``group`` joins a coordinator-managed consumer group so
        several contexts can split a topic's partitions between them.
        """
        if self.cluster is None:
            raise RuntimeError("kafka_stream() requires a StreamingContext with a cluster")
        source = KafkaSource(
            self.host,
            topics=topics,
            bootstrap=self.cluster.bootstrap_hosts(prefer=self.host.name),
            consumer_config=consumer_config,
            value_from_record=value_from_record,
            partitions=partitions,
            group=group,
        )
        self.sources.append(source)
        return DStream(self, source)

    def sharded_kafka_stream(
        self,
        topic: str,
        partitions: List[int],
        consumer_config: Optional[ConsumerConfig] = None,
    ) -> DStream:
        """A partition-sharded stream: one source instance per assigned partition.

        Each partition gets its own :class:`KafkaSource` (its own consumer
        client fetching exactly that partition); a :class:`MergingSource`
        merges their pending records in partition order at every micro-batch
        boundary, so the merged output is deterministic under the simulator
        and per-key order survives sharding.  Chain ``.repartition_by_key()``
        before keyed stateful operators to regroup records by key.
        """
        if self.cluster is None:
            raise RuntimeError(
                "sharded_kafka_stream() requires a StreamingContext with a cluster"
            )
        bootstrap = self.cluster.bootstrap_hosts(prefer=self.host.name)
        children = [
            KafkaSource(
                self.host,
                topics=[topic],
                bootstrap=bootstrap,
                consumer_config=consumer_config,
                name=f"{self.name}-{topic}-p{partition}",
                partitions=[partition],
            )
            for partition in partitions
        ]
        source = MergingSource(children, name=f"{self.name}-{topic}-sharded")
        self.sources.append(source)
        return DStream(self, source)

    def kafka_sink(
        self, topic: str, producer_config: Optional[ProducerConfig] = None, envelope: bool = True
    ) -> KafkaSink:
        if self.cluster is None:
            raise RuntimeError("kafka_sink() requires a StreamingContext with a cluster")
        return KafkaSink(
            self.host,
            topic=topic,
            bootstrap=self.cluster.bootstrap_hosts(prefer=self.host.name),
            producer_config=producer_config,
            envelope=envelope,
        )

    def register_output(self, stream: DStream) -> None:
        if stream not in self.output_streams:
            self.output_streams.append(stream)

    # -- lifecycle -----------------------------------------------------------------------
    def start(self) -> None:
        """Start receivers, sinks and the micro-batch scheduling loop."""
        if self.running:
            return
        if not self.output_streams:
            raise RuntimeError(f"{self.name} has no output streams registered")
        self.running = True
        for source in self.sources:
            source.start()
        for stream in self.output_streams:
            for sink in stream.sinks:
                sink.start()
        self.sim.process(self._driver_loop(), name=f"{self.name}:driver")

    def stop(self) -> None:
        self.running = False
        for source in self.sources:
            source.stop()
        for stream in self.output_streams:
            for sink in stream.sinks:
                sink.stop()

    # -- driver loop ------------------------------------------------------------------------
    def _driver_loop(self):
        while self.running:
            yield self.sim.timeout(self.config.batch_interval)
            scheduled_at = self.sim.now
            yield from self._run_batch(scheduled_at)
            self.batches_run += 1
            if (
                self.config.max_batches is not None
                and self.batches_run >= self.config.max_batches
            ):
                self.stop()
                return

    def _run_batch(self, scheduled_at: float):
        for index, stream in enumerate(self.output_streams):
            # The columnar plane applies when this context runs vectorized,
            # the source drains columns natively, and the stream has no join
            # (the join's right side drains a second source mid-chain — the
            # record path is its semantic reference).  Either branch charges
            # the executor cost model first — simulated time depends only on
            # input record count, input bytes and stage count, which both
            # paths observe identically, so traces are bitwise equal.
            columnar = (
                self.vectorized
                and stream.joined_with is None
                and stream.source.supports_columns
            )
            if columnar:
                cols = stream.source.drain_columns()
                input_records = len(cols)
                input_bytes = cols.total_bytes()
            else:
                batch = stream.source.drain()
                input_records = len(batch)
                input_bytes = sum(record.size for record in batch)
            start = self.sim.now
            duration = yield from self.executor.run_job(
                n_records=input_records,
                n_bytes=input_bytes,
                n_stages=stream.n_stages,
            )
            if columnar:
                output = stream.execute_columns(cols, self.sim.now)
            else:
                output = stream.execute(batch, self.sim.now)
            if isinstance(output, ColumnBatch):
                # StreamRecord materialization is deferred past any sink that
                # takes columns; if several sinks need records, they share
                # one materialization.
                records = None
                for sink in stream.sinks:
                    if sink.accepts_columns:
                        sink.write_columns(output, self.sim.now)
                    else:
                        if records is None:
                            records = output.to_records()
                        sink.write(records, self.sim.now)
            else:
                for sink in stream.sinks:
                    sink.write(output, self.sim.now)
            self.batch_metrics.append(
                BatchMetric(
                    batch_time=scheduled_at,
                    stream_index=index,
                    input_records=input_records,
                    input_bytes=input_bytes,
                    output_records=len(output),
                    processing_time=duration,
                    scheduling_delay=start - scheduled_at,
                )
            )

    # -- metrics ------------------------------------------------------------------------------
    def mean_processing_time(self, skip_empty: bool = True) -> float:
        """Average job processing time (the Figure 7b metric)."""
        metrics = [
            metric for metric in self.batch_metrics
            if not skip_empty or metric.input_records > 0
        ]
        if not metrics:
            return 0.0
        return sum(metric.processing_time for metric in metrics) / len(metrics)

    def total_input_records(self) -> int:
        return sum(metric.input_records for metric in self.batch_metrics)

    def total_output_records(self) -> int:
        return sum(metric.output_records for metric in self.batch_metrics)
