"""Columnar micro-batches for the vectorized operator plane.

A :class:`ColumnBatch` is the SPE-side sibling of the broker's
:class:`~repro.broker.batch.RecordBatch`: one object holding the micro-batch
as five parallel columns (``values``, ``keys``, ``event_times``,
``ingest_times``, ``sizes``) instead of a list of per-record
:class:`~repro.engine.records.StreamRecord` objects.  Columnar kernels on
the operators (see :mod:`repro.engine.operators`) transform these columns as
whole-column operations — list comprehensions over raw values, key-group
folds over the key column — so an n-stage pipeline allocates O(stages)
Python objects per micro-batch instead of O(records × stages).

Zero-copy ingest
----------------
``PartitionLog.read_batch`` builds every fetch reply from *fresh* column
slices, and the consumer hands the reply batch to its ``on_batch`` observer
without retaining it (see :mod:`repro.broker.consumer`).  The observer
therefore owns the columns, and :meth:`ColumnBatch.extend_from_wire` adopts
them directly — a drained micro-batch whose records all came from one fetch
reuses the broker's slices without copying a single element.

Size-carry rules
----------------
The ``sizes`` column mirrors ``StreamRecord``'s lazy size semantics: an
entry is either a positive int (observed — e.g. the wire size from ingest)
or ``None`` (deferred — a derived value nobody has observed yet).  Deferred
entries are resolved through the same pure
:func:`~repro.network.packet.estimate_size`, at most once, at the point of
observation (batch byte-accounting or a Kafka sink), so observed values are
byte-identical to the record path and simulated traces do not change.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.engine.records import StreamRecord
from repro.network.packet import estimate_size


class ColumnBatch:
    """One micro-batch as parallel columns (the vectorized execution unit).

    Columns are plain Python lists and always the same length.  Kernels
    never mutate an input batch's columns in place — they either return the
    input unchanged (when nothing was dropped or rewritten) or build a new
    :class:`ColumnBatch`, which lets stateful operators (windows) retain and
    re-emit previously seen batches safely.  The one sanctioned mutation is
    resolving a deferred ``sizes`` entry in place, which is observationally
    pure (``estimate_size`` is a pure function of the value).
    """

    __slots__ = ("values", "keys", "event_times", "ingest_times", "sizes")

    def __init__(
        self,
        values: Optional[List[Any]] = None,
        keys: Optional[List[Any]] = None,
        event_times: Optional[List[float]] = None,
        ingest_times: Optional[List[float]] = None,
        sizes: Optional[List[Optional[int]]] = None,
    ) -> None:
        self.values: List[Any] = values if values is not None else []
        self.keys: List[Any] = keys if keys is not None else []
        self.event_times: List[float] = event_times if event_times is not None else []
        self.ingest_times: List[float] = ingest_times if ingest_times is not None else []
        self.sizes: List[Optional[int]] = sizes if sizes is not None else []

    # -- construction ----------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[StreamRecord]) -> "ColumnBatch":
        """Decompose materialized records into columns (record-mode bridge).

        Cached sizes carry over verbatim; unobserved records stay deferred
        (``None``), exactly as they were on the record.
        """
        batch = cls()
        values = batch.values
        keys = batch.keys
        event_times = batch.event_times
        ingest_times = batch.ingest_times
        sizes = batch.sizes
        for record in records:
            values.append(record.value)
            keys.append(record.key)
            event_times.append(record.event_time)
            ingest_times.append(record.ingest_time)
            sizes.append(record._size)
        return batch

    def extend_from_wire(self, batch, received_at: float, skip=None) -> int:
        """Ingest one fetched :class:`RecordBatch`; returns records ingested.

        When this ColumnBatch is empty and nothing must be skipped, the wire
        batch's ``values``/``keys``/``sizes``/``produced_ats`` columns are
        adopted wholesale (zero-copy — see the module docstring for the
        ownership contract).  ``skip`` holds offsets the consumer marked
        invisible (control markers, aborted transactions); those records
        must never enter the stream.
        """
        count = len(batch)
        if skip:
            base = batch.base_offset
            offsets = batch.offsets  # gapped (compacted-range) batches only
            values = self.values
            keys = self.keys
            event_times = self.event_times
            ingest_times = self.ingest_times
            sizes = self.sizes
            ingested = 0
            batch_keys = batch.keys
            batch_sizes = batch.sizes
            batch_produced = batch.produced_ats
            for index, value in enumerate(batch.values):
                offset = offsets[index] if offsets is not None else base + index
                if offset in skip:
                    continue
                values.append(value)
                keys.append(batch_keys[index])
                event_times.append(batch_produced[index])
                ingest_times.append(received_at)
                sizes.append(batch_sizes[index])
                ingested += 1
            return ingested
        if not self.values:
            # Adopt the reply's freshly-sliced columns outright.
            self.values = batch.values
            self.keys = batch.keys
            self.event_times = batch.produced_ats
            self.sizes = batch.sizes
            self.ingest_times = [received_at] * count
        else:
            self.values.extend(batch.values)
            self.keys.extend(batch.keys)
            self.event_times.extend(batch.produced_ats)
            self.sizes.extend(batch.sizes)
            self.ingest_times.extend([received_at] * count)
        return count

    def extend(self, other: "ColumnBatch") -> None:
        """Append another batch's columns, TAKING OWNERSHIP of them.

        When this batch is empty the other's column lists are adopted
        outright (and may be appended to later) — callers must relinquish
        ``other`` afterwards.  This is the partition-order merge used by
        ``MergingSource.drain_columns`` over its children's drained (and
        thereby disowned) batches.
        """
        if not self.values:
            self.values = other.values
            self.keys = other.keys
            self.event_times = other.event_times
            self.ingest_times = other.ingest_times
            self.sizes = other.sizes
            return
        self.values.extend(other.values)
        self.keys.extend(other.keys)
        self.event_times.extend(other.event_times)
        self.ingest_times.extend(other.ingest_times)
        self.sizes.extend(other.sizes)

    @classmethod
    def concat(cls, batches: List["ColumnBatch"]) -> "ColumnBatch":
        """Non-destructive concatenation (window emission over live chunks).

        Unlike :meth:`extend`, never adopts or mutates an input's columns —
        a single-element input is returned as-is, anything longer is copied.
        """
        if len(batches) == 1:
            return batches[0]
        merged = cls()
        if not batches:
            return merged
        first = batches[0]
        merged.values = list(first.values)
        merged.keys = list(first.keys)
        merged.event_times = list(first.event_times)
        merged.ingest_times = list(first.ingest_times)
        merged.sizes = list(first.sizes)
        for batch in batches[1:]:
            merged.values.extend(batch.values)
            merged.keys.extend(batch.keys)
            merged.event_times.extend(batch.event_times)
            merged.ingest_times.extend(batch.ingest_times)
            merged.sizes.extend(batch.sizes)
        return merged

    # -- derivation helpers (used by columnar kernels) --------------------------------
    def derive(self, values: List[Any], keys: Optional[List[Any]] = None) -> "ColumnBatch":
        """A new batch with rewritten values (and optionally keys), same provenance.

        Size semantics mirror ``StreamRecord.with_value``: an output value
        that *is* the input value (identity rewrite) shares the parent's
        size state; anything else defers sizing until observed.
        """
        old_values = self.values
        sizes = [
            size if new is old else None
            for new, old, size in zip(values, old_values, self.sizes)
        ]
        return ColumnBatch(
            values=values,
            keys=keys if keys is not None else self.keys,
            event_times=self.event_times,
            ingest_times=self.ingest_times,
            sizes=sizes,
        )

    def take(self, indices: List[int]) -> "ColumnBatch":
        """Gather rows by index (filters, key-group regathering)."""
        values = self.values
        keys = self.keys
        event_times = self.event_times
        ingest_times = self.ingest_times
        sizes = self.sizes
        return ColumnBatch(
            values=[values[i] for i in indices],
            keys=[keys[i] for i in indices],
            event_times=[event_times[i] for i in indices],
            ingest_times=[ingest_times[i] for i in indices],
            sizes=[sizes[i] for i in indices],
        )

    # -- observation ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def total_bytes(self) -> int:
        """Sum of record sizes, resolving (and caching) deferred entries.

        This is the micro-batch boundary's byte observation — identical to
        ``sum(record.size for record in batch)`` on the record path.
        """
        sizes = self.sizes
        try:
            return sum(sizes)
        except TypeError:
            pass
        values = self.values
        total = 0
        for index, size in enumerate(sizes):
            if size is None:
                size = estimate_size(values[index])
                sizes[index] = size
            total += size
        return total

    def size_at(self, index: int) -> int:
        """One record's size, resolving a deferred entry in place."""
        size = self.sizes[index]
        if size is None:
            size = estimate_size(self.values[index])
            self.sizes[index] = size
        return size

    def to_records(self) -> List[StreamRecord]:
        """Materialize per-record :class:`StreamRecord` objects.

        Observed sizes carry over verbatim; deferred entries stay deferred
        on the materialized record (sized lazily on first read, as always).
        """
        keys = self.keys
        event_times = self.event_times
        ingest_times = self.ingest_times
        sizes = self.sizes
        records: List[StreamRecord] = []
        append = records.append
        new = StreamRecord.__new__
        for index, value in enumerate(self.values):
            record = new(StreamRecord)
            record.value = value
            record.key = keys[index]
            record.event_time = event_times[index]
            record.ingest_time = ingest_times[index]
            record._size = sizes[index] or None
            append(record)
        return records

    def __repr__(self) -> str:
        return f"<ColumnBatch n={len(self.values)}>"
