"""repro — a reproduction of stream2gym (ICDCS 2023).

A pure-Python, discrete-event reproduction of "Fast Prototyping of
Distributed Stream Processing Applications with stream2gym": a Mininet-like
network emulator, a Kafka-like event streaming platform, a Spark-like
micro-batch stream processing engine, data stores, the stream2gym high-level
prototyping interface, the paper's five example applications, and experiment
harnesses for every table and figure of its evaluation.

Most users start from :class:`repro.core.Emulation` together with a task
description (programmatic or GraphML); see README.md for a quickstart.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
