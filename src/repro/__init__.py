"""repro — a reproduction of stream2gym (ICDCS 2023).

A pure-Python, discrete-event reproduction of "Fast Prototyping of
Distributed Stream Processing Applications with stream2gym": a Mininet-like
network emulator, a Kafka-like event streaming platform, a Spark-like
micro-batch stream processing engine, data stores, the stream2gym high-level
prototyping interface, the paper's five example applications, and experiment
harnesses for every table and figure of its evaluation.

Most users start from the declarative scenario catalog —
``python -m repro list`` / ``python -m repro run quickstart`` or
:func:`repro.scenarios.run` — which fronts every experiment and example;
:class:`repro.core.Emulation` plus a task description (programmatic or
GraphML) remains the lower-level entry point.  See README.md for a
quickstart.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
