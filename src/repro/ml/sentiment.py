"""Lexicon-based sentiment analysis (polarity and subjectivity)."""

from __future__ import annotations

import re
from typing import Dict

POSITIVE_WORDS = {
    "love", "amazing", "great", "wonderful", "happy", "excellent", "fantastic",
    "good", "best", "awesome", "nice", "perfect", "beautiful", "impressive",
}
NEGATIVE_WORDS = {
    "terrible", "awful", "disappointed", "worst", "horrible", "broken", "bad",
    "bug", "outage", "slow", "fail", "failed", "poor", "ugly", "sad",
}
SUBJECTIVE_MARKERS = {
    "i", "me", "my", "think", "feel", "opinion", "honestly", "personally",
    "believe", "hope", "wish", "hate", "love",
}

_TOKEN_PATTERN = re.compile(r"[a-z']+")


def _tokenize(text: str) -> list:
    return _TOKEN_PATTERN.findall(text.lower())


def sentiment_scores(text: str) -> Dict[str, float]:
    """Compute polarity in [-1, 1] and subjectivity in [0, 1] for a text.

    Polarity is the normalized balance of positive vs negative lexicon hits;
    subjectivity is the fraction of tokens that are opinion markers or carry
    sentiment.  These are the two NLP tasks the paper's sentiment-analysis
    application computes per tweet.
    """
    tokens = _tokenize(text)
    if not tokens:
        return {"polarity": 0.0, "subjectivity": 0.0}
    positives = sum(1 for token in tokens if token in POSITIVE_WORDS)
    negatives = sum(1 for token in tokens if token in NEGATIVE_WORDS)
    markers = sum(1 for token in tokens if token in SUBJECTIVE_MARKERS)
    sentiment_hits = positives + negatives
    polarity = 0.0
    if sentiment_hits:
        polarity = (positives - negatives) / sentiment_hits
    subjectivity = min(1.0, (markers + sentiment_hits) / len(tokens) * 2.0)
    return {"polarity": polarity, "subjectivity": subjectivity}


def classify_polarity(polarity: float, threshold: float = 0.1) -> str:
    """Map a polarity score to a discrete label."""
    if polarity > threshold:
        return "positive"
    if polarity < -threshold:
        return "negative"
    return "neutral"
