"""Lightweight machine learning used by the example applications.

The fraud-detection application runs an SVM over transaction streams and the
sentiment-analysis application computes polarity/subjectivity of tweets.  The
reproduction ships minimal, dependency-light implementations of both: a
linear SVM trained with stochastic sub-gradient descent on the hinge loss,
and a lexicon-based sentiment scorer.
"""

from repro.ml.svm import LinearSVM
from repro.ml.sentiment import sentiment_scores

__all__ = ["LinearSVM", "sentiment_scores"]
