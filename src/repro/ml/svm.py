"""Linear SVM trained with stochastic sub-gradient descent (Pegasos-style)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class LinearSVM:
    """A linear support vector machine for binary classification.

    Labels are +1 / -1.  Training minimizes the L2-regularized hinge loss with
    a simple learning-rate schedule; this is deliberately small and
    dependency-free (numpy only) while behaving like the SVM used in the
    paper's fraud-detection pipeline.
    """

    def __init__(self, n_features: int, regularization: float = 1e-3, seed: int = 0) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        self.n_features = n_features
        self.regularization = regularization
        self.weights = np.zeros(n_features, dtype=float)
        self.bias = 0.0
        self._rng = np.random.default_rng(seed)
        self.trained_epochs = 0

    # -- training --------------------------------------------------------------------
    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
        epochs: int = 10,
    ) -> "LinearSVM":
        """Train on a labelled batch; can be called repeatedly (warm start)."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected features of shape (n, {self.n_features}), got {x.shape}"
            )
        if set(np.unique(y)) - {1.0, -1.0}:
            raise ValueError("labels must be +1 or -1")
        n_samples = x.shape[0]
        step = self.trained_epochs * n_samples + 1
        for _ in range(epochs):
            order = self._rng.permutation(n_samples)
            for index in order:
                learning_rate = 1.0 / (self.regularization * step)
                margin = y[index] * (x[index] @ self.weights + self.bias)
                if margin < 1:
                    self.weights = (
                        (1 - learning_rate * self.regularization) * self.weights
                        + learning_rate * y[index] * x[index]
                    )
                    self.bias += learning_rate * y[index]
                else:
                    self.weights = (1 - learning_rate * self.regularization) * self.weights
                step += 1
            self.trained_epochs += 1
        return self

    # -- inference --------------------------------------------------------------------
    def decision_function(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        return x @ self.weights + self.bias

    def predict(self, features: Sequence[Sequence[float]]) -> List[int]:
        scores = self.decision_function(features)
        return [1 if score >= 0 else -1 for score in scores]

    def predict_one(self, feature_vector: Sequence[float]) -> int:
        return self.predict([feature_vector])[0]

    def accuracy(self, features: Sequence[Sequence[float]], labels: Sequence[int]) -> float:
        predictions = self.predict(features)
        correct = sum(1 for p, y in zip(predictions, labels) if p == y)
        return correct / len(labels) if labels else 0.0
