"""The scenario registry: every experiment, example and sweep, one catalog.

Scenario definitions live next to the code they describe (each
``repro.experiments.fig*`` module registers its figure, the bundled example
apps register under :mod:`repro.scenarios.examples`).  The registry imports
those modules lazily on first lookup, so ``import repro.scenarios`` stays
cheap and there is no import cycle (definition modules import the scenario
machinery, never the other way around at import time).
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Union

from repro.scenarios.spec import Scenario

_SCENARIOS: Dict[str, Scenario] = {}

#: Modules that self-register scenarios when imported.
_DEFINITION_MODULES = (
    "repro.experiments.fig5_link_delay",
    "repro.experiments.fig6_partition",
    "repro.experiments.fig7a_video_analytics",
    "repro.experiments.fig7b_traffic_monitoring",
    "repro.experiments.fig8_accuracy",
    "repro.experiments.fig9_resources",
    "repro.experiments.table2_applications",
    "repro.scenarios.examples",
)

_loaded = False


def register(scenario: Scenario) -> Scenario:
    """Register (or replace) a scenario under its name."""
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    """Look up a scenario by name, loading the built-in definitions."""
    _ensure_definitions()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(names())}"
        ) from None


def resolve(scenario: Union[str, Scenario]) -> Scenario:
    return get(scenario) if isinstance(scenario, str) else scenario


def names() -> List[str]:
    """All registered scenario names, sorted."""
    _ensure_definitions()
    return sorted(_SCENARIOS)


def all_scenarios() -> List[Scenario]:
    _ensure_definitions()
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]


def _ensure_definitions() -> None:
    global _loaded
    if _loaded:
        return
    for module in _DEFINITION_MODULES:
        importlib.import_module(module)
    # Only after every module imported cleanly: a failed import must surface
    # again on the next lookup, not leave a silently partial registry.
    _loaded = True
