"""Scenario execution: points -> outcomes -> RunResult, optionally parallel.

The only thing that ever crosses a process boundary is a
:class:`~repro.scenarios.spec.PointSpec` (a module-level function plus
picklable kwargs) and its outcome, so worker processes need nothing beyond
``import repro``.  Outcomes are always handed to ``combine`` in the
scenario's canonical point order, which is why parallel runs are
bitwise-identical to sequential ones (see the determinism contract in
:mod:`repro.scenarios.spec`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Sequence, Union

from repro.scenarios import registry
from repro.scenarios.spec import PointSpec, RunResult, Scenario, ScenarioParams


def run_point(point: PointSpec) -> Any:
    """Execute one point (the unit of work a pool worker receives)."""
    return point.fn(**point.kwargs)


def execute_points(points: Sequence[PointSpec], workers: int = 1) -> List[Any]:
    """Run the points and return their outcomes in canonical order.

    ``workers <= 1`` runs in-process (no pool, no pickling — the quick test
    tier never needs a subprocess).  Larger values shard the points across a
    ``ProcessPoolExecutor``; ``pool.map`` preserves submission order, so the
    outcome list is identical to the sequential one.
    """
    points = list(points)
    if workers <= 1 or len(points) <= 1:
        return [run_point(point) for point in points]
    with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
        return list(pool.map(run_point, points))


def assemble_run_result(
    scenario: Scenario,
    config: Any,
    points: Sequence[PointSpec],
    outcomes: Sequence[Any],
    *,
    workers: int,
    scale: str,
    wall_seconds: float,
) -> RunResult:
    """Combine point outcomes into the uniform :class:`RunResult`.

    Shared by :class:`ScenarioRunner` and :class:`~repro.scenarios.sweep.Sweep`
    so the result assembly (combine -> metrics -> check) exists exactly once.
    """
    result = scenario.combine(config, list(outcomes))
    metrics = scenario.metrics(result) if scenario.metrics else {}
    problems = scenario.check(config, result) if scenario.check else None
    return RunResult(
        scenario=scenario.name,
        scale=scale,
        seed=scenario.config_seed(config),
        fingerprint=scenario.fingerprint(config),
        metrics=metrics,
        wall_seconds=wall_seconds,
        workers=workers,
        n_points=len(points),
        point_labels=[point.label for point in points],
        problems=problems,
        result=result,
    )


class ScenarioRunner:
    """Execute a scenario (by name or instance) into a :class:`RunResult`."""

    def __init__(self, scenario: Union[str, Scenario]) -> None:
        self.scenario = registry.resolve(scenario)

    def run(
        self,
        params: Optional[ScenarioParams] = None,
        workers: int = 1,
    ) -> RunResult:
        params = params or ScenarioParams()
        config = self.scenario.build_config(params)
        return self.run_config(config, workers=workers, scale=params.scale)

    def run_config(
        self, config: Any, workers: int = 1, scale: str = "custom"
    ) -> RunResult:
        """Run an already-materialized configuration.

        This is the delegation target of the legacy ``run_fig*`` entry
        points: they build their historical config object and hand it here,
        so every old script transparently gains ``workers``.
        """
        scenario = self.scenario
        points = scenario.points(config)
        started = time.perf_counter()
        outcomes = execute_points(points, workers=workers)
        wall = time.perf_counter() - started
        return assemble_run_result(
            scenario,
            config,
            points,
            outcomes,
            workers=workers,
            scale=scale,
            wall_seconds=wall,
        )


def run(
    scenario: Union[str, Scenario],
    params: Optional[ScenarioParams] = None,
    workers: int = 1,
    **param_kwargs: Any,
) -> RunResult:
    """One-call front door: ``run("fig7b", scale="paper", workers=4)``.

    ``param_kwargs`` are :class:`ScenarioParams` fields; passing both
    ``params`` and kwargs is an error.
    """
    if params is not None and param_kwargs:
        raise TypeError("pass either params or ScenarioParams field kwargs, not both")
    if param_kwargs:
        params = ScenarioParams(**param_kwargs)
    return ScenarioRunner(scenario).run(params=params, workers=workers)
