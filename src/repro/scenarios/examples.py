"""Scenario definitions for the bundled example applications.

Each of the five ``examples/*.py`` scripts is a thin reporting shim over a
scenario registered here, so every example is also listable and runnable
from the one front door::

    python -m repro run quickstart
    python -m repro run failure-injection --scale quick

The point functions return plain picklable dicts (never live emulation
objects), so the examples inherit process-parallel execution and the
subprocess round-trip guarantees of the scenario API for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.core.emulation import Emulation
from repro.core.graphml import parse_graphml_string
from repro.experiments import fig5_link_delay, fig6_partition
from repro.experiments.fig5_link_delay import Fig5Config
from repro.experiments.fig6_partition import Fig6Config
from repro.scenarios.spec import PointSpec, Scenario
from repro.scenarios.registry import register
from repro.workloads import pregenerated
from repro.workloads.text import generate_documents


# -- quickstart: the Figure 2 word-count pipeline ---------------------------------


@dataclass
class QuickstartConfig:
    """The paper's reference pipeline at example scale."""

    n_documents: int = 50
    files_per_second: float = 10.0
    link_latency_ms: float = 5.0
    duration: float = 60.0
    #: Partitions per topic (``--set partitions=4`` shards the whole pipeline).
    partitions: int = 1
    #: Exactly-once produce path (``--set idempotence=true``): the document
    #: source carries sequence numbers and brokers drop duplicate retries.
    idempotence: bool = False
    #: Transactional produce path (``--set transactional_id=tx1``): the
    #: document source commits atomic batches; implies idempotence.
    transactional_id: str = ""
    #: ``--set isolation_level=read_committed`` makes the sink deliver only
    #: committed transactions (meaningful with ``transactional_id``).
    isolation_level: str = "read_uncommitted"
    #: ``--set vectorized=false`` pins both SPE jobs to the per-record path.
    vectorized: bool = True
    seed: int = 42


def run_quickstart(config: QuickstartConfig) -> Dict[str, Any]:
    from repro.apps.word_count import create_task

    task = create_task(
        n_documents=config.n_documents,
        files_per_second=config.files_per_second,
        link_latency_ms=config.link_latency_ms,
        partitions=config.partitions,
        idempotence=config.idempotence,
        transactional_id=config.transactional_id or None,
        isolation_level=config.isolation_level,
        vectorized=config.vectorized,
    )
    documents = pregenerated(generate_documents, config.n_documents, seed=config.seed)
    emulation = Emulation(task, seed=config.seed, datasets={"documents": documents})
    result = emulation.run(duration=config.duration)
    sink = emulation.consumers["h5"]
    samples = []
    for record in sink.records[:3]:
        value = record.value.get("value") if isinstance(record.value, dict) else record.value
        samples.append(
            {
                "doc_id": value.get("doc_id"),
                "total_words": value.get("total_words"),
                "distinct_words": value.get("distinct_words"),
                "latency_s": record.latency,
            }
        )
    spe1 = emulation.spes["h3"]
    return {
        "task_summary": task.summary(),
        "summary": result.summary(),
        "sink_samples": samples,
        "spe_job1": {
            "input_records": spe1.total_input_records(),
            "batches_run": spe1.batches_run,
            "mean_processing_ms": spe1.mean_processing_time() * 1000,
        },
    }


def _quickstart_points(config: QuickstartConfig) -> List[PointSpec]:
    return [PointSpec(fn=run_quickstart, kwargs={"config": config}, label="quickstart")]


def _single_outcome(config: Any, outcomes: List[Any]) -> Any:
    return outcomes[0]


def _quickstart_metrics(result: Dict[str, Any]) -> Dict[str, Any]:
    summary = result["summary"]
    return {
        "messages_produced": summary["messages_produced"],
        "messages_consumed": summary["messages_consumed"],
        "mean_latency_s": round(summary["latency"].get("mean", 0.0), 4),
        "spe1_batches": result["spe_job1"]["batches_run"],
    }


register(
    Scenario(
        name="quickstart",
        title="Quickstart — prototype the word-count pipeline in a few lines",
        config_factory=QuickstartConfig,
        points=_quickstart_points,
        combine=_single_outcome,
        metrics=_quickstart_metrics,
        tiers={
            "quick": {"n_documents": 15, "duration": 30.0},
            "paper": {},
        },
        description="The Figure 2 reference pipeline, run end to end.",
    )
)


# -- graphml-task: the paper's Figure 4 GraphML listing ---------------------------

GRAPHML_TASK = """<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <graph edgedefault="undirected">
    <data key="topicCfg">{topics: [
        {name: raw-data, replicas: 1, primaryBroker: h2},
        {name: words-per-doc, replicas: 1, primaryBroker: h2}]}</data>

    <!-- Cluster allocation -->
    <node id="h1">
      <data key="prodType">DIRECTORY</data>
      <data key="prodCfg">{topicName: raw-data, filePath: documents,
                           totalMessages: 30, messagesPerSecond: 6}</data>
    </node>
    <node id="h2">
      <data key="brokerCfg">{coordinator: true}</data>
    </node>
    <node id="h3">
      <data key="streamProcType">SPARK</data>
      <data key="streamProcCfg">{app: word_count, inputTopics: [raw-data],
                                 outputTopic: words-per-doc, batchInterval: 0.5}</data>
    </node>
    <node id="h5">
      <data key="consType">STANDARD</data>
      <data key="consCfg">{topics: [words-per-doc]}</data>
    </node>

    <!-- Network setup -->
    <node id="s1"/>
    <edge source="s1" target="h1"><data key="st">1</data><data key="dt">1</data><data key="lat">50</data></edge>
    <edge source="s1" target="h2"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="s1" target="h3"><data key="lat">5</data><data key="bw">100</data></edge>
    <edge source="s1" target="h5"><data key="lat">5</data><data key="bw">100</data></edge>
  </graph>
</graphml>
"""


@dataclass
class GraphmlTaskConfig:
    """Run the Figure 4 GraphML task description."""

    n_documents: int = 30
    duration: float = 45.0
    #: ``> 1`` shards every topic of the GraphML listing to this count; ``1``
    #: (the default) keeps whatever counts the listing's ``topicCfg``
    #: declares (which also accepts a ``partitions`` entry inline).
    partitions: int = 1
    #: ``True`` switches every producer of the listing to the exactly-once
    #: produce path (a ``prodCfg`` may also declare ``idempotence`` inline).
    idempotence: bool = False
    #: Non-empty switches every producer of the listing to the transactional
    #: produce path (a ``prodCfg`` may also declare ``transactionalId``).
    transactional_id: str = ""
    #: Applied to every consumer of the listing (``consCfg`` may also declare
    #: ``isolationLevel`` inline).
    isolation_level: str = "read_uncommitted"
    #: ``False`` pins every SPE job of the listing to the per-record path
    #: (``streamProcCfg`` may also declare ``vectorized`` inline).
    vectorized: bool = True
    seed: int = 7


def run_graphml_task(config: GraphmlTaskConfig) -> Dict[str, Any]:
    task = parse_graphml_string(GRAPHML_TASK, name="figure4-example")
    if config.partitions > 1:
        for topic in task.topics:
            topic.partitions = config.partitions
    if config.idempotence:
        for node in task.nodes.values():
            prod_cfg = node.attributes.get("prodCfg")
            if isinstance(prod_cfg, dict):
                prod_cfg["idempotence"] = True
    if config.transactional_id:
        for node in task.nodes.values():
            prod_cfg = node.attributes.get("prodCfg")
            if isinstance(prod_cfg, dict):
                prod_cfg["transactionalId"] = config.transactional_id
    if config.isolation_level != "read_uncommitted":
        for node in task.nodes.values():
            cons_cfg = node.attributes.get("consCfg")
            if isinstance(cons_cfg, dict):
                cons_cfg["isolationLevel"] = config.isolation_level
    if not config.vectorized:
        for node in task.nodes.values():
            spe_cfg = node.attributes.get("streamProcCfg")
            if isinstance(spe_cfg, dict):
                spe_cfg["vectorized"] = False
    problems = task.validate()
    documents = pregenerated(generate_documents, config.n_documents, seed=config.seed)
    emulation = Emulation(task, seed=config.seed, datasets={"documents": documents})
    result = emulation.run(duration=config.duration)
    sink = emulation.consumers["h5"]
    samples = []
    for record in sink.records[:5]:
        value = record.value.get("value") if isinstance(record.value, dict) else record.value
        samples.append(
            {"doc_id": value.get("doc_id"), "distinct_words": value.get("distinct_words")}
        )
    return {
        "validation_problems": problems,
        "task_summary": task.summary(),
        "messages_produced": result.messages_produced,
        "messages_consumed": result.messages_consumed,
        "mean_latency_s": result.latency_summary["mean"],
        "sink_samples": samples,
    }


def _graphml_points(config: GraphmlTaskConfig) -> List[PointSpec]:
    return [PointSpec(fn=run_graphml_task, kwargs={"config": config}, label="graphml")]


def _graphml_metrics(result: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "messages_produced": result["messages_produced"],
        "messages_consumed": result["messages_consumed"],
        "mean_latency_s": round(result["mean_latency_s"], 4),
    }


def _graphml_check(config: GraphmlTaskConfig, result: Dict[str, Any]) -> List[str]:
    return list(result["validation_problems"])


register(
    Scenario(
        name="graphml-task",
        title="GraphML task — the paper's Figure 4 description, parsed and run",
        config_factory=GraphmlTaskConfig,
        points=_graphml_points,
        combine=_single_outcome,
        metrics=_graphml_metrics,
        tiers={
            "quick": {"n_documents": 10, "duration": 25.0},
            "paper": {},
        },
        check=_graphml_check,
        description="Parse the Figure 4 GraphML listing, validate it and run it.",
    )
)


# -- failure-injection: the Figure 6 study at example scale -----------------------


def _failure_injection_config() -> Fig6Config:
    return Fig6Config(
        n_sites=5,
        duration=240.0,
        disconnect_start=80.0,
        disconnect_duration=50.0,
        seed=3,
    )


register(
    Scenario(
        name="failure-injection",
        title="Failure injection — broker partition, ZooKeeper vs KRaft loss",
        config_factory=_failure_injection_config,
        points=fig6_partition.scenario_points,
        combine=fig6_partition.scenario_combine,
        metrics=fig6_partition.scenario_metrics,
        # Same study as fig6, so the scale tiers are shared with it — only
        # the "default" (example-scale) config differs.
        tiers=fig6_partition.SCENARIO.tiers,
        sweep_axis="n_sites",
        check=fig6_partition._scenario_check,
        description="The Figure 6 partition study at example scale, both modes.",
    )
)


# -- geo-latency: the Figure 5 study at example scale -----------------------------


def _geo_latency_config() -> Fig5Config:
    return Fig5Config(
        link_delays_ms=[25, 75, 150],
        components=["producer", "broker", "spe", "consumer"],
        n_documents=25,
        duration=50.0,
    )


register(
    Scenario(
        name="geo-latency",
        title="Geo-distributed latency — which component's WAN delay hurts most",
        config_factory=_geo_latency_config,
        points=fig5_link_delay.scenario_points,
        combine=fig5_link_delay.scenario_combine,
        metrics=fig5_link_delay.scenario_metrics,
        # Shares fig5's tiers; paper scale additionally restores the full
        # delay grid that this example's default config trims to 3 points.
        tiers={
            "quick": fig5_link_delay.SCENARIO.tiers["quick"],
            "paper": {
                **fig5_link_delay.SCENARIO.tiers["paper"],
                "link_delays_ms": [25, 50, 75, 100, 125, 150],
            },
        },
        sweep_axis="link_delays_ms",
        check=fig5_link_delay._scenario_check,
        description="The Figure 5 link-delay sweep at example scale.",
    )
)


# -- fraud-pipeline: streaming fraud detection with an SVM ------------------------


@dataclass
class FraudPipelineConfig:
    """The Table II fraud-detection pipeline at example scale."""

    n_transactions: int = 300
    duration: float = 60.0
    fraud_rate: float = 0.1
    transactions_per_second: float = 30.0
    #: Partitions per topic (transactions are keyed by account id).
    partitions: int = 1
    #: Exactly-once produce path for the transaction source.
    idempotence: bool = False
    #: Transactional produce path for the transaction source (atomic batches
    #: of card transactions; implies idempotence).
    transactional_id: str = ""
    #: ``read_committed`` makes the alert sink deliver only committed
    #: transactions.
    isolation_level: str = "read_uncommitted"
    #: ``--set vectorized=false`` pins the SVM scoring job to the record path.
    vectorized: bool = True
    seed: int = 13


def run_fraud_pipeline(config: FraudPipelineConfig) -> Dict[str, Any]:
    from repro.apps.fraud_detection import run as run_fraud_detection

    result = run_fraud_detection(
        n_transactions=config.n_transactions,
        duration=config.duration,
        seed=config.seed,
        fraud_rate=config.fraud_rate,
        transactions_per_second=config.transactions_per_second,
        partitions=config.partitions,
        idempotence=config.idempotence,
        transactional_id=config.transactional_id or None,
        isolation_level=config.isolation_level,
        vectorized=config.vectorized,
    )
    alerts = result.extras["alerts"]
    true_positives = result.extras["true_positive_alerts"]
    frauds = result.extras["actual_frauds_in_stream"]
    return {
        "transactions_produced": result.messages_produced,
        "alerts": alerts,
        "true_positive_alerts": true_positives,
        "actual_frauds_in_stream": frauds,
        "recall": true_positives / frauds if frauds else 0.0,
        "precision": true_positives / alerts if alerts else 0.0,
        "mean_alert_latency_s": result.latency_summary["mean"],
        "median_cpu_percent": result.resource_report.median_cpu(),
    }


def _fraud_points(config: FraudPipelineConfig) -> List[PointSpec]:
    return [PointSpec(fn=run_fraud_pipeline, kwargs={"config": config}, label="fraud")]


def _fraud_metrics(result: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "transactions_produced": result["transactions_produced"],
        "alerts": result["alerts"],
        "recall": round(result["recall"], 3),
        "precision": round(result["precision"], 3),
        "mean_alert_latency_s": round(result["mean_alert_latency_s"], 4),
    }


register(
    Scenario(
        name="fraud-pipeline",
        title="Fraud detection — SVM-scored transaction stream with alerts",
        config_factory=FraudPipelineConfig,
        points=_fraud_points,
        combine=_single_outcome,
        metrics=_fraud_metrics,
        tiers={
            "quick": {"n_transactions": 80, "duration": 30.0},
            "paper": {},
        },
        description="The Table II fraud-detection pipeline with alert quality.",
    )
)
