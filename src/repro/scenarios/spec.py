"""Declarative scenario specifications.

A :class:`Scenario` is the picklable, declarative description of one
reproducible simulation study: how to build its configuration (a plain
dataclass composing topology, links, broker/topic settings, workload,
pipeline, fault schedule and seed), how to decompose a configured run into
independent :class:`PointSpec` sub-runs, how to combine the point outcomes
back into the study's result object, and how to summarize that result as a
flat metrics dict.

The decomposition into points is what makes process-parallel execution a
property of the API instead of any one script: every point is a module-level
function plus picklable keyword arguments, so a ``ProcessPoolExecutor``
worker can execute it unchanged, and the combine step is a cheap reduce in
the parent.

Determinism contract
--------------------
All randomness of a point must flow from its configuration (typically a
``seed`` field).  A point may not read global mutable state, the wall clock
or its execution order.  Under that contract, running the points of a
scenario (or of a sweep) sequentially, across processes, or in any order
produces bitwise-identical results — which the test suite asserts.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


#: Scale tier applied when :class:`ScenarioParams` does not name one.
DEFAULT_SCALE = "quick"

#: Tier name that means "the config dataclass defaults, untouched".
MODULE_DEFAULTS_SCALE = "default"


@dataclass
class ScenarioParams:
    """Uniform run parameters shared by every scenario.

    This replaces the per-module quick-vs-paper constants: every scenario
    declares its scale tiers as field overrides on its config dataclass, and
    callers pick a tier here instead of hand-editing figures' config fields.

    * ``scale`` — ``"quick"`` (tiny, CI-suitable), ``"paper"`` (the paper's
      full settings) or ``"default"`` (the config dataclass defaults, which
      each experiment module keeps at its historical values).
    * ``seed`` — overrides the scenario's seed field when not ``None``.
    * ``overrides`` — explicit config-field overrides applied last.
    """

    scale: str = DEFAULT_SCALE
    seed: Optional[int] = None
    overrides: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PointSpec:
    """One independent sub-run of a scenario.

    ``fn`` must be a module-level callable and ``kwargs`` picklable values,
    so the point can cross a process boundary.  ``index`` is the point's
    position in the scenario's canonical (sequential) order; ``combine``
    receives outcomes in exactly that order regardless of how the points
    were executed.
    """

    fn: Callable[..., Any]
    kwargs: Dict[str, Any]
    label: str = ""
    index: int = 0


@dataclass
class RunResult:
    """Uniform result of one scenario run.

    ``metrics`` is a flat, JSON-safe summary; ``result`` is the scenario's
    native result object (a figure result dataclass, a dict of them, ...).
    ``fingerprint`` hashes the scenario name plus the full configuration, so
    two runs with equal fingerprints executed the same simulation inputs.
    """

    scenario: str
    scale: str
    seed: Any
    fingerprint: str
    metrics: Dict[str, Any]
    wall_seconds: float
    workers: int
    n_points: int
    point_labels: List[str] = field(default_factory=list)
    problems: Optional[List[str]] = None
    result: Any = None

    def summary(self) -> Dict[str, Any]:
        """JSON-safe view (drops the native ``result`` object)."""
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "wall_seconds": round(self.wall_seconds, 4),
            "workers": self.workers,
            "n_points": self.n_points,
            "points": list(self.point_labels),
            "metrics": dict(self.metrics),
            "problems": list(self.problems) if self.problems is not None else None,
        }


@dataclass
class Scenario:
    """Declarative description of one runnable study.

    Parameters
    ----------
    name:
        Registry key (``python -m repro run <name>``).
    title:
        One-line human description shown by ``python -m repro list``.
    config_factory:
        Zero-argument callable returning the scenario's config dataclass at
        its module defaults (the historical per-module constants).
    points:
        ``points(config) -> List[PointSpec]`` — the canonical decomposition
        into independent sub-runs.
    combine:
        ``combine(config, outcomes) -> result`` — reduce the point outcomes
        (in canonical order) into the scenario's native result object.
    metrics:
        ``metrics(result) -> dict`` — flat JSON-safe summary for
        :class:`RunResult`; optional.
    tiers:
        Scale-tier field overrides, e.g. ``{"quick": {...}, "paper": {...}}``.
        ``"default"`` is implicit and applies no overrides.
    sweep_axis:
        The config field a bare ``--sweep value,value`` targets (the
        scenario's natural axis, e.g. ``user_counts`` for fig7b).
    check:
        ``check(config, result) -> List[str]`` — qualitative paper-shape
        violations; informational at quick scale.
    seed_field:
        Name of the config field that :class:`ScenarioParams.seed` overrides.
    """

    name: str
    title: str
    config_factory: Callable[[], Any]
    points: Callable[[Any], List[PointSpec]]
    combine: Callable[[Any, List[Any]], Any]
    metrics: Optional[Callable[[Any], Dict[str, Any]]] = None
    tiers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    sweep_axis: Optional[str] = None
    check: Optional[Callable[[Any, Any], List[str]]] = None
    seed_field: str = "seed"
    description: str = ""

    def scales(self) -> List[str]:
        """Tier names this scenario accepts."""
        names = [MODULE_DEFAULTS_SCALE]
        names.extend(sorted(self.tiers))
        return names

    def build_config(self, params: Optional[ScenarioParams] = None) -> Any:
        """Materialize the config dataclass for ``params``.

        Order: config defaults -> scale-tier overrides -> explicit field
        overrides -> seed override.  Unknown scales and unknown fields raise
        immediately (a mistyped CLI flag must not silently run the default).
        """
        params = params or ScenarioParams()
        config = self.config_factory()
        scale = params.scale or MODULE_DEFAULTS_SCALE
        if scale != MODULE_DEFAULTS_SCALE:
            if scale not in self.tiers:
                raise ValueError(
                    f"scenario {self.name!r} has no scale {scale!r}; "
                    f"available: {', '.join(self.scales())}"
                )
            for name, value in self.tiers[scale].items():
                _set_config_field(config, name, value)
        for name, value in params.overrides.items():
            _set_config_field(config, name, value)
        if params.seed is not None:
            _set_config_field(config, self.seed_field, params.seed)
        return config

    def config_seed(self, config: Any) -> Any:
        return getattr(config, self.seed_field, None)

    def fingerprint(self, config: Any) -> str:
        """Stable digest of (scenario, full configuration)."""
        return config_fingerprint(self.name, config)


def _set_config_field(config: Any, name: str, value: Any) -> None:
    if dataclasses.is_dataclass(config):
        known = {f.name for f in dataclasses.fields(config)}
        if name not in known:
            raise ValueError(
                f"{type(config).__name__} has no field {name!r}; "
                f"known fields: {', '.join(sorted(known))}"
            )
    elif not hasattr(config, name):
        raise ValueError(f"{type(config).__name__} has no field {name!r}")
    # A scalar assigned to a list-valued field means "that one value":
    # sweeping/overriding fig7b's user_counts with 40 runs [40], instead of
    # handing scenario code an unexpected bare int.
    current = getattr(config, name, None)
    if isinstance(current, list) and not isinstance(value, (list, tuple)):
        value = [value]
    setattr(config, name, value)


def config_fingerprint(scenario_name: str, config: Any) -> str:
    """Digest the scenario name plus every config field, recursively."""
    digest = hashlib.sha1()
    digest.update(scenario_name.encode("utf-8"))
    digest.update(b"|")
    digest.update(_canonical(config).encode("utf-8"))
    return digest.hexdigest()[:16]


def _canonical(value: Any) -> str:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, dict):
        items = ", ".join(
            f"{_canonical(key)}: {_canonical(value[key])}" for key in sorted(value, key=repr)
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_canonical(item) for item in value) + "]"
    return repr(value)


def derive_seed(base: Any, *components: Any) -> int:
    """Deterministic per-point seed: hash ``base`` with the point identity.

    Scenarios whose points must *not* share the base seed (e.g. independent
    repetitions) derive each point's seed from the base plus stable point
    coordinates; the result depends only on the inputs, never on execution
    order or process placement.
    """
    digest = hashlib.sha1(repr((base,) + components).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")
