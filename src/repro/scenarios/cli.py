"""``python -m repro`` — list and run scenarios from one entry point.

Commands
--------
``python -m repro list``
    Show every registered scenario with its scale tiers and sweep axis.

``python -m repro run <scenario> [options]``
    Run one scenario::

        python -m repro run quickstart
        python -m repro run fig7b --scale paper --workers 4
        python -m repro run fig5 --set n_documents=20 --seed 7
        python -m repro run fig7b --sweep user_counts=20,40,60,80,100 --workers 4
        python -m repro run fig6 --json

    ``--sweep`` accepts ``field=v1,v2,...`` (or bare ``v1,v2,...`` to target
    the scenario's natural axis) and may repeat to form a product; each
    value becomes one full scenario run, all sharded across ``--workers``.

    ``--reps N`` repeats every configuration N times with derived seeds
    (``derive_seed(base, "rep", r)``) and reports ``<metric>_mean`` /
    ``<metric>_ci95`` aggregates — a per-point seed study, e.g.::

        python -m repro run fig7b --reps 5 --workers 4
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.scenarios import registry
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import RunResult, ScenarioParams
from repro.scenarios.sweep import Sweep


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's experiments and examples as declarative scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list every registered scenario")

    run_parser = commands.add_parser("run", help="run one scenario (optionally a sweep)")
    run_parser.add_argument("scenario", help="scenario name (see: python -m repro list)")
    run_parser.add_argument(
        "--scale",
        default="quick",
        help='scale tier: "quick" (default), "paper", or "default" (module constants)',
    )
    run_parser.add_argument("--seed", type=int, default=None, help="override the seed")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard independent points across N processes (default: 1, in-process)",
    )
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override one config field (repeatable)",
    )
    run_parser.add_argument(
        "--sweep",
        dest="sweeps",
        action="append",
        default=[],
        metavar="[FIELD=]V1,V2,...",
        help="sweep a config field; bare values target the scenario's sweep axis",
    )
    run_parser.add_argument(
        "--reps",
        type=int,
        default=1,
        metavar="N",
        help="repeat each configuration N times with derived seeds; metrics "
        "gain <name>_mean / <name>_ci95 aggregates",
    )
    run_parser.add_argument("--json", action="store_true", help="emit a JSON summary")
    run_parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the paper-shape check reports problems",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args)


def _cmd_list() -> int:
    scenarios = registry.all_scenarios()
    width = max(len(s.name) for s in scenarios)
    print(f"{len(scenarios)} scenarios registered:\n")
    for scenario in scenarios:
        scales = ",".join(scenario.scales())
        axis = f"  sweep axis: {scenario.sweep_axis}" if scenario.sweep_axis else ""
        print(f"  {scenario.name:<{width}}  {scenario.title}")
        print(f"  {'':<{width}}  scales: {scales}{axis}")
    print("\nrun one with: python -m repro run <name> [--scale paper] [--workers N]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        scenario = registry.get(args.scenario)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.reps < 1:
        print(f"error: --reps must be >= 1, got {args.reps}", file=sys.stderr)
        return 2
    params = ScenarioParams(
        scale=args.scale,
        seed=args.seed,
        overrides=dict(_parse_override(item) for item in args.overrides),
    )
    try:
        if args.sweeps or args.reps > 1:
            return _run_sweep(scenario, params, args)
        result = ScenarioRunner(scenario).run(params=params, workers=args.workers)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.summary(), indent=2, default=str))
    else:
        _print_run(result)
    return _exit_code(args, [result])


def _run_sweep(scenario, params: ScenarioParams, args: argparse.Namespace) -> int:
    sweep = Sweep(scenario, params=params)
    for item in args.sweeps:
        field_name, values = _parse_sweep(item)
        sweep.over(field_name, values)
    if args.reps > 1:
        sweep.repetitions(args.reps)
    outcome = sweep.run(workers=args.workers)
    if args.json:
        print(json.dumps(outcome.summary(), indent=2, default=str))
    else:
        axes_label = (
            " x ".join(f"{name}={values}" for name, values in outcome.axes)
            or f"reps={args.reps}"
        )
        print(
            f"sweep {outcome.scenario} over {axes_label}"
            + f"  ({len(outcome.runs)} runs, workers={outcome.workers}, "
            f"{outcome.wall_seconds:.2f}s)"
        )
        for row in outcome.metrics_rows():
            print("  " + ", ".join(f"{key}={value}" for key, value in row.items()))
        problems = [p for result in outcome.results() for p in (result.problems or [])]
        if problems:
            print("shape problems: " + "; ".join(problems))
    return _exit_code(args, outcome.results())


def _print_run(result: RunResult) -> None:
    print(
        f"scenario {result.scenario} (scale={result.scale}, seed={result.seed}, "
        f"fingerprint={result.fingerprint})"
    )
    print(
        f"  {result.n_points} points, workers={result.workers}, "
        f"{result.wall_seconds:.2f}s wall"
    )
    for key, value in result.metrics.items():
        print(f"  {key:>28}: {value}")
    if result.problems:
        print("  shape problems vs the paper:")
        for problem in result.problems:
            print(f"    - {problem}")
    elif result.problems is not None:
        print("  shape check vs the paper: OK")


def _exit_code(args: argparse.Namespace, results: List[RunResult]) -> int:
    if not args.check:
        return 0
    return 1 if any(result.problems for result in results) else 0


def _parse_override(item: str) -> Tuple[str, Any]:
    if "=" not in item:
        raise SystemExit(f"--set expects FIELD=VALUE, got {item!r}")
    name, _, raw = item.partition("=")
    raw = raw.strip()
    try:
        value = ast.literal_eval(raw)
        # `--set user_counts=20,40` literal-evals to a *tuple*; normalize to
        # a list so both comma spellings (numeric and string) and the Python
        # API hand scenarios the same type.
        if isinstance(value, tuple):
            value = list(value)
        return name.strip(), value
    except (ValueError, SyntaxError):
        pass
    if "," in raw:
        # `--set components=producer,broker` means a list of values, exactly
        # like --sweep's value syntax.
        return name.strip(), [_parse_value(part) for part in raw.split(",") if part.strip()]
    return name.strip(), raw


def _parse_sweep(item: str) -> Tuple[Optional[str], List[Any]]:
    if "=" in item:
        name, _, raw = item.partition("=")
        field_name: Optional[str] = name.strip()
    else:
        field_name, raw = None, item
    values = [_parse_value(part) for part in raw.split(",") if part.strip()]
    if not values:
        raise SystemExit(f"--sweep got no values in {item!r}")
    return field_name, values


def _parse_value(raw: str) -> Any:
    raw = raw.strip()
    # Lowercase booleans are what shells hand us (--set idempotence=true);
    # without this they would land as truthy *strings*, making "false" True.
    if raw.lower() == "true":
        return True
    if raw.lower() == "false":
        return False
    try:
        return ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        return raw
