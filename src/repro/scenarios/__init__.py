"""repro.scenarios — the declarative front door for every experiment.

Every figure/table reproduction and every bundled example is registered here
as a :class:`Scenario`: a picklable spec describing how to configure a run,
how it decomposes into independent points, and how point outcomes combine
into the study's result.  One runner executes any of them (sequentially or
across a process pool), one sweep API shards parameter studies, and one CLI
(``python -m repro``) lists and runs the whole catalog.

    from repro.scenarios import run, Sweep

    result = run("fig7b", scale="paper", workers=4)
    sweep = Sweep("fig7b").over("user_counts", [20, 60, 100]).run(workers=4)

See ``docs/scenario_api.md`` for the spec schema and the seeding /
determinism contract.
"""

from repro.scenarios.registry import all_scenarios, get, names, register, resolve
from repro.scenarios.runner import ScenarioRunner, execute_points, run, run_point
from repro.scenarios.spec import (
    PointSpec,
    RunResult,
    Scenario,
    ScenarioParams,
    config_fingerprint,
    derive_seed,
)
from repro.scenarios.sweep import Sweep, SweepResult, sweep

__all__ = [
    "PointSpec",
    "RunResult",
    "Scenario",
    "ScenarioParams",
    "ScenarioRunner",
    "Sweep",
    "SweepResult",
    "all_scenarios",
    "config_fingerprint",
    "derive_seed",
    "execute_points",
    "get",
    "names",
    "register",
    "resolve",
    "run",
    "run_point",
    "sweep",
]
