"""Sweeps: run a scenario across one or more config axes, optionally parallel.

``Sweep("fig7b").over("user_counts", [20, 40, 60, 80, 100]).run(workers=4)``
runs one full scenario per axis value, sharding *all* points of *all* sweep
values across one process pool — a sweep of five single-point runs keeps
four workers busy, not one.

Seeding is deterministic per point: every point's randomness flows from its
config (the swept field plus the base seed), never from execution order or
process placement, so ``run(workers=N)`` is bitwise-identical to
``run(workers=1)`` for the same axes.  Scenarios that want sweep points to
use *different* seeds derive them per value via
:func:`repro.scenarios.spec.derive_seed` on a config field — still a pure
function of the point identity.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.scenarios import registry
from repro.scenarios.runner import assemble_run_result, execute_points
from repro.scenarios.spec import RunResult, Scenario, ScenarioParams, _set_config_field


@dataclass
class SweepResult:
    """All runs of one sweep, in axis-product order."""

    scenario: str
    axes: List[Tuple[str, List[Any]]]
    runs: List[Tuple[Tuple[Any, ...], RunResult]]
    wall_seconds: float
    workers: int

    def values(self) -> List[Tuple[Any, ...]]:
        return [combo for combo, _ in self.runs]

    def results(self) -> List[RunResult]:
        return [result for _, result in self.runs]

    def metrics_rows(self) -> List[Dict[str, Any]]:
        """One flat dict per run: axis values + that run's metrics."""
        rows = []
        axis_names = [name for name, _ in self.axes]
        for combo, result in self.runs:
            row: Dict[str, Any] = dict(zip(axis_names, combo))
            row.update(result.metrics)
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "axes": [[name, list(values)] for name, values in self.axes],
            "wall_seconds": round(self.wall_seconds, 4),
            "workers": self.workers,
            "runs": [
                {"values": list(combo), **result.summary()}
                for combo, result in self.runs
            ],
        }


class Sweep:
    """Fluent sweep builder over a scenario's config fields."""

    def __init__(
        self,
        scenario: Union[str, Scenario],
        params: Optional[ScenarioParams] = None,
    ) -> None:
        self.scenario = registry.resolve(scenario)
        self.params = params or ScenarioParams()
        self._axes: List[Tuple[str, List[Any]]] = []

    def over(self, field_name: Optional[str], values: Sequence[Any]) -> "Sweep":
        """Add an axis; ``None`` targets the scenario's natural sweep axis."""
        if field_name is None:
            field_name = self.scenario.sweep_axis
            if field_name is None:
                raise ValueError(
                    f"scenario {self.scenario.name!r} declares no sweep_axis; "
                    "name the config field explicitly"
                )
        self._axes.append((field_name, list(values)))
        return self

    def configs(self) -> List[Tuple[Tuple[Any, ...], Any]]:
        """Materialize one config per axis-product combination.

        A scalar value swept over a list-valued field (e.g. ``20`` over
        fig7b's ``user_counts``) is wrapped into a one-element list, so
        sweeping an axis externally means "one scenario run per value".
        """
        if not self._axes:
            raise ValueError("sweep has no axes; call over() first")
        combos = []
        for combo in itertools.product(*(values for _, values in self._axes)):
            config = self.scenario.build_config(self.params)
            for (field_name, _), value in zip(self._axes, combo):
                # Validating setter: a mistyped axis name must raise (not
                # silently run every combination at the default config); it
                # also wraps scalars assigned to list-valued fields.
                _set_config_field(config, field_name, value)
            combos.append((combo, config))
        return combos

    def run(self, workers: int = 1) -> SweepResult:
        """Execute every combination; all points share one worker pool.

        Because runs interleave in the shared pool, per-run wall clock is
        not attributable: every :class:`RunResult` in the sweep carries the
        whole batch's ``wall_seconds`` (equal to ``SweepResult.wall_seconds``).
        """
        combos = self.configs()
        scenario = self.scenario
        per_run_points = [scenario.points(config) for _, config in combos]
        flat = [point for points in per_run_points for point in points]
        started = time.perf_counter()
        outcomes = execute_points(flat, workers=workers)
        wall = time.perf_counter() - started
        runs: List[Tuple[Tuple[Any, ...], RunResult]] = []
        cursor = 0
        for (combo, config), points in zip(combos, per_run_points):
            slice_outcomes = outcomes[cursor : cursor + len(points)]
            cursor += len(points)
            runs.append(
                (
                    combo,
                    assemble_run_result(
                        scenario,
                        config,
                        points,
                        slice_outcomes,
                        workers=workers,
                        scale=self.params.scale,
                        wall_seconds=wall,
                    ),
                )
            )
        return SweepResult(
            scenario=scenario.name,
            axes=list(self._axes),
            runs=runs,
            wall_seconds=wall,
            workers=workers,
        )


def sweep(
    scenario: Union[str, Scenario],
    params: Optional[ScenarioParams] = None,
) -> Sweep:
    """Convenience constructor mirroring :func:`repro.scenarios.run`."""
    return Sweep(scenario, params=params)
