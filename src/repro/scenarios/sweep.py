"""Sweeps: run a scenario across one or more config axes, optionally parallel.

``Sweep("fig7b").over("user_counts", [20, 40, 60, 80, 100]).run(workers=4)``
runs one full scenario per axis value, sharding *all* points of *all* sweep
values across one process pool — a sweep of five single-point runs keeps
four workers busy, not one.

Seeding is deterministic per point: every point's randomness flows from its
config (the swept field plus the base seed), never from execution order or
process placement, so ``run(workers=N)`` is bitwise-identical to
``run(workers=1)`` for the same axes.  Scenarios that want sweep points to
use *different* seeds derive them per value via
:func:`repro.scenarios.spec.derive_seed` on a config field — still a pure
function of the point identity.
"""

from __future__ import annotations

import copy
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.scenarios import registry
from repro.scenarios.runner import assemble_run_result, execute_points
from repro.scenarios.spec import (
    RunResult,
    Scenario,
    ScenarioParams,
    _set_config_field,
    derive_seed,
)


@dataclass
class SweepResult:
    """All runs of one sweep, in axis-product order."""

    scenario: str
    axes: List[Tuple[str, List[Any]]]
    runs: List[Tuple[Tuple[Any, ...], RunResult]]
    wall_seconds: float
    workers: int

    def values(self) -> List[Tuple[Any, ...]]:
        return [combo for combo, _ in self.runs]

    def results(self) -> List[RunResult]:
        return [result for _, result in self.runs]

    def metrics_rows(self) -> List[Dict[str, Any]]:
        """One flat dict per run: axis values + that run's metrics."""
        rows = []
        axis_names = [name for name, _ in self.axes]
        for combo, result in self.runs:
            row: Dict[str, Any] = dict(zip(axis_names, combo))
            row.update(result.metrics)
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "axes": [[name, list(values)] for name, values in self.axes],
            "wall_seconds": round(self.wall_seconds, 4),
            "workers": self.workers,
            "runs": [
                {"values": list(combo), **result.summary()}
                for combo, result in self.runs
            ],
        }


class Sweep:
    """Fluent sweep builder over a scenario's config fields."""

    def __init__(
        self,
        scenario: Union[str, Scenario],
        params: Optional[ScenarioParams] = None,
    ) -> None:
        self.scenario = registry.resolve(scenario)
        self.params = params or ScenarioParams()
        self._axes: List[Tuple[str, List[Any]]] = []
        self._repetitions = 1

    def repetitions(self, n: int) -> "Sweep":
        """Run every configuration ``n`` times with derived per-rep seeds.

        Rep 0 keeps the configuration's base seed (so ``repetitions(1)`` is
        exactly a plain sweep); rep ``r`` runs with
        ``derive_seed(base_seed, "rep", r)`` — a pure function of the point
        identity, preserving the parallel==sequential determinism contract.
        Each combination's :class:`RunResult` carries rep 0's native result
        plus cross-rep aggregates in ``metrics``: ``<metric>_mean`` and
        ``<metric>_ci95`` (normal-approximation 95% confidence interval) for
        every numeric metric, ``repetitions`` and the ``rep_seeds`` used.
        """
        if n < 1:
            raise ValueError("repetitions must be >= 1")
        self._repetitions = n
        return self

    def over(self, field_name: Optional[str], values: Sequence[Any]) -> "Sweep":
        """Add an axis; ``None`` targets the scenario's natural sweep axis."""
        if field_name is None:
            field_name = self.scenario.sweep_axis
            if field_name is None:
                raise ValueError(
                    f"scenario {self.scenario.name!r} declares no sweep_axis; "
                    "name the config field explicitly"
                )
        self._axes.append((field_name, list(values)))
        return self

    def configs(self) -> List[Tuple[Tuple[Any, ...], Any]]:
        """Materialize one config per axis-product combination.

        A scalar value swept over a list-valued field (e.g. ``20`` over
        fig7b's ``user_counts``) is wrapped into a one-element list, so
        sweeping an axis externally means "one scenario run per value".
        """
        if not self._axes:
            raise ValueError("sweep has no axes; call over() first")
        combos = []
        for combo in itertools.product(*(values for _, values in self._axes)):
            config = self.scenario.build_config(self.params)
            for (field_name, _), value in zip(self._axes, combo):
                # Validating setter: a mistyped axis name must raise (not
                # silently run every combination at the default config); it
                # also wraps scalars assigned to list-valued fields.
                _set_config_field(config, field_name, value)
            combos.append((combo, config))
        return combos

    def _rep_configs(self, config: Any) -> List[Any]:
        """The per-repetition configs of one combination (rep 0 = verbatim)."""
        if self._repetitions == 1:
            return [config]
        scenario = self.scenario
        base_seed = scenario.config_seed(config)
        rep_configs = [config]
        for rep in range(1, self._repetitions):
            rep_config = copy.deepcopy(config)
            _set_config_field(
                rep_config, scenario.seed_field, derive_seed(base_seed, "rep", rep)
            )
            rep_configs.append(rep_config)
        return rep_configs

    def run(self, workers: int = 1) -> SweepResult:
        """Execute every combination; all points share one worker pool.

        Because runs interleave in the shared pool, per-run wall clock is
        not attributable: every :class:`RunResult` in the sweep carries the
        whole batch's ``wall_seconds`` (equal to ``SweepResult.wall_seconds``).
        """
        if self._axes:
            combos = self.configs()
        elif self._repetitions > 1:
            # A pure repetition study sweeps nothing: one combination, the
            # scenario's configured defaults.
            combos = [((), self.scenario.build_config(self.params))]
        else:
            raise ValueError("sweep has no axes; call over() first")
        scenario = self.scenario
        per_combo_configs = [self._rep_configs(config) for _, config in combos]
        per_combo_points = [
            [scenario.points(rep_config) for rep_config in rep_configs]
            for rep_configs in per_combo_configs
        ]
        flat = [
            point
            for rep_points in per_combo_points
            for points in rep_points
            for point in points
        ]
        started = time.perf_counter()
        outcomes = execute_points(flat, workers=workers)
        wall = time.perf_counter() - started
        runs: List[Tuple[Tuple[Any, ...], RunResult]] = []
        cursor = 0
        for (combo, _config), rep_configs, rep_points in zip(
            combos, per_combo_configs, per_combo_points
        ):
            rep_results: List[RunResult] = []
            for rep_config, points in zip(rep_configs, rep_points):
                slice_outcomes = outcomes[cursor : cursor + len(points)]
                cursor += len(points)
                rep_results.append(
                    assemble_run_result(
                        scenario,
                        rep_config,
                        points,
                        slice_outcomes,
                        workers=workers,
                        scale=self.params.scale,
                        wall_seconds=wall,
                    )
                )
            primary = rep_results[0]
            if self._repetitions > 1:
                _aggregate_rep_metrics(primary, rep_results)
                primary.metrics["rep_seeds"] = [
                    scenario.config_seed(rep_config) for rep_config in rep_configs
                ]
                # A failing shape check in ANY repetition must surface (and
                # fail --check), not just rep 0's.
                labeled = [
                    f"rep {rep} (seed {result.seed}): {problem}"
                    for rep, result in enumerate(rep_results[1:], start=1)
                    for problem in (result.problems or [])
                ]
                if labeled:
                    primary.problems = list(primary.problems or []) + labeled
            runs.append((combo, primary))
        return SweepResult(
            scenario=scenario.name,
            axes=list(self._axes),
            runs=runs,
            wall_seconds=wall,
            workers=workers,
        )


def _aggregate_rep_metrics(primary: RunResult, rep_results: List[RunResult]) -> None:
    """Attach cross-repetition mean/CI aggregates to the primary RunResult.

    For every metric that is numeric in *all* repetitions, add
    ``<name>_mean`` and ``<name>_ci95`` (1.96 * stderr, the normal-
    approximation 95% confidence half-width; 0.0 for a single rep).
    """
    n = len(rep_results)
    primary.metrics = dict(primary.metrics)
    for name, value in list(primary.metrics.items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        values = []
        for result in rep_results:
            rep_value = result.metrics.get(name)
            if isinstance(rep_value, bool) or not isinstance(rep_value, (int, float)):
                break
            values.append(float(rep_value))
        if len(values) != n:
            continue
        mean = sum(values) / n
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
            ci95 = 1.96 * math.sqrt(variance / n)
        else:
            ci95 = 0.0
        primary.metrics[f"{name}_mean"] = round(mean, 6)
        primary.metrics[f"{name}_ci95"] = round(ci95, 6)
    primary.metrics["repetitions"] = n


def sweep(
    scenario: Union[str, Scenario],
    params: Optional[ScenarioParams] = None,
) -> Sweep:
    """Convenience constructor mirroring :func:`repro.scenarios.run`."""
    return Sweep(scenario, params=params)
