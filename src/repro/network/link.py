"""Emulated links with latency, bandwidth and loss shaping.

A link connects two ports and carries traffic independently in each
direction.  The model is store-and-forward: a packet first occupies the
transmitter for its serialization time (``wire_size / bandwidth``), then
propagates for the configured latency, then (unless lost or the link went
down in flight) is delivered to the far port.  Queueing happens naturally
because each direction serializes one packet at a time, which is how
congestion, head-of-line blocking and the bandwidth spikes of Figure 6d
emerge.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.network.node import Port
from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation import Simulator


class _Direction:
    """Per-direction transmit state: FIFO queue plus a busy flag.

    The link data path is callback-driven (no Store, no pump process): the
    whole per-packet cost is one serialization timer and one propagation
    entry on the simulator's fast path.
    """

    __slots__ = ("src", "dst", "queue", "busy")

    def __init__(self, src: Port, dst: Port) -> None:
        self.src = src
        self.dst = dst
        self.queue: deque = deque()
        self.busy = False


@dataclass
class LinkConfig:
    """Shaping parameters of a link (Table I link attributes).

    Attributes
    ----------
    latency_ms:
        One-way propagation delay in milliseconds (``lat``).
    bandwidth_mbps:
        Capacity in megabits per second (``bw``).  ``None`` means unshaped
        (effectively infinite, as in Mininet links without a ``bw`` option).
    loss_percent:
        Random packet loss percentage (``loss``).
    """

    latency_ms: float = 0.0
    bandwidth_mbps: Optional[float] = 1000.0
    loss_percent: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_percent <= 100.0:
            raise ValueError("loss must lie in [0, 100]")

    def __setattr__(self, name: str, value) -> None:
        # The derived values below are read once per packet on the hot data
        # path, so they are plain floats kept in sync on every assignment
        # (fault injectors mutate loss_percent/latency_ms mid-run) instead of
        # per-packet @property arithmetic.
        if name == "bandwidth_mbps" and value is not None and value <= 0:
            # Must stay loud on mutation too: silently mapping 0 to
            # "unshaped" would turn a throttled link into an infinite one.
            raise ValueError("bandwidth must be positive")
        object.__setattr__(self, name, value)
        if name == "latency_ms":
            object.__setattr__(self, "latency_s", value / 1000.0)
        elif name == "loss_percent":
            object.__setattr__(self, "loss_probability", value / 100.0)
        elif name == "bandwidth_mbps":
            # inf encodes "unshaped": size * 8 / inf == 0.0.
            object.__setattr__(
                self,
                "bits_per_second",
                float("inf") if value is None else value * 1e6,
            )

    def serialization_delay(self, wire_size_bytes: int) -> float:
        """Time to clock ``wire_size_bytes`` onto the wire."""
        return wire_size_bytes * 8 / self.bits_per_second


class Link:
    """A bidirectional link between two ports."""

    def __init__(
        self,
        sim: "Simulator",
        port_a: Port,
        port_b: Port,
        config: Optional[LinkConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.config = config or LinkConfig()
        self.name = name or (
            f"{port_a.node.name}:{port_a.number}<->{port_b.node.name}:{port_b.number}"
        )
        self.up = True
        self._rng = sim.rng(f"link-loss:{self.name}")
        self._directions = {
            id(port_a): _Direction(port_a, port_b),
            id(port_b): _Direction(port_b, port_a),
        }
        self.packets_dropped_loss = 0
        self.packets_dropped_down = 0
        self.packets_delivered = 0
        port_a.attach(self)
        port_b.attach(self)

    # -- wiring ----------------------------------------------------------------
    def other_port(self, port: Port) -> Port:
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"{port!r} is not attached to {self.name}")

    def endpoints(self):
        """The two node names this link connects."""
        return (self.port_a.node.name, self.port_b.node.name)

    # -- state ----------------------------------------------------------------
    def set_down(self) -> None:
        """Administratively disable the link (both directions)."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    # -- data path --------------------------------------------------------------
    def transmit(self, packet: Packet, from_port: Port) -> None:
        """Enqueue ``packet`` for transmission away from ``from_port``."""
        direction = self._directions[id(from_port)]
        direction.queue.append(packet)
        if not direction.busy:
            direction.busy = True
            self._drain(direction)

    def _drain(self, direction: "_Direction") -> None:
        """Serialize queued packets one at a time (callback-driven pump).

        Runs until a serialization timer is scheduled (shaped links) or the
        queue empties.  While a timer is outstanding ``direction.busy`` stays
        True and the timer's completion callback re-enters the drain, which
        is what serializes one packet at a time and produces the queueing /
        head-of-line blocking behaviour of the store-and-forward model.
        """
        queue = direction.queue
        config = self.config
        while queue:
            packet = queue.popleft()
            if not self.up:
                self.packets_dropped_down += 1
                direction.src.stats.record_tx_drop()
                continue
            serialization = packet.wire_size * 8 / config.bits_per_second
            if serialization > 0:
                self.sim.call_later(serialization, self._serialized, direction, packet)
                return
            self._launch(direction, packet)
        direction.busy = False

    def _serialized(self, direction: "_Direction", packet: Packet) -> None:
        """Timer callback: the packet has fully left the transmitter."""
        self._launch(direction, packet)
        self._drain(direction)

    def _launch(self, direction: "_Direction", packet: Packet) -> None:
        """Post-serialization fate: drop (down/loss) or propagate."""
        if not self.up:
            self.packets_dropped_down += 1
            direction.src.stats.record_tx_drop()
            return
        if self._rng.bernoulli(self.config.loss_probability):
            self.packets_dropped_loss += 1
            direction.src.stats.record_tx_drop()
            return
        # Propagation happens in parallel with the next serialization;
        # one fast-path heap entry per delivery, no per-packet Process.
        self.sim.call_later(self.config.latency_s, self._arrive, packet, direction.dst)

    def _arrive(self, packet: Packet, dst: Port) -> None:
        if not self.up:
            self.packets_dropped_down += 1
            return
        self.packets_delivered += 1
        dst.deliver(packet)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Link {self.name} {state} {self.config.latency_ms}ms>"
