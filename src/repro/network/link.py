"""Emulated links with latency, bandwidth and loss shaping.

A link connects two ports and carries traffic independently in each
direction.  The model is store-and-forward: a packet first occupies the
transmitter for its serialization time (``wire_size / bandwidth``), then
propagates for the configured latency, then (unless lost or the link went
down in flight) is delivered to the far port.  Queueing happens naturally
because each direction serializes one packet at a time, which is how
congestion, head-of-line blocking and the bandwidth spikes of Figure 6d
emerge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.network.node import Port
from repro.network.packet import Packet
from repro.simulation.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation import Simulator


@dataclass
class LinkConfig:
    """Shaping parameters of a link (Table I link attributes).

    Attributes
    ----------
    latency_ms:
        One-way propagation delay in milliseconds (``lat``).
    bandwidth_mbps:
        Capacity in megabits per second (``bw``).  ``None`` means unshaped
        (effectively infinite, as in Mininet links without a ``bw`` option).
    loss_percent:
        Random packet loss percentage (``loss``).
    """

    latency_ms: float = 0.0
    bandwidth_mbps: Optional[float] = 1000.0
    loss_percent: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_percent <= 100.0:
            raise ValueError("loss must lie in [0, 100]")

    @property
    def latency_s(self) -> float:
        return self.latency_ms / 1000.0

    @property
    def loss_probability(self) -> float:
        return self.loss_percent / 100.0

    def serialization_delay(self, wire_size_bytes: int) -> float:
        """Time to clock ``wire_size_bytes`` onto the wire."""
        if self.bandwidth_mbps is None:
            return 0.0
        return wire_size_bytes * 8 / (self.bandwidth_mbps * 1e6)


class Link:
    """A bidirectional link between two ports."""

    def __init__(
        self,
        sim: "Simulator",
        port_a: Port,
        port_b: Port,
        config: Optional[LinkConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.config = config or LinkConfig()
        self.name = name or (
            f"{port_a.node.name}:{port_a.number}<->{port_b.node.name}:{port_b.number}"
        )
        self.up = True
        self._rng = sim.rng(f"link-loss:{self.name}")
        self._queues = {id(port_a): Store(sim), id(port_b): Store(sim)}
        self.packets_dropped_loss = 0
        self.packets_dropped_down = 0
        self.packets_delivered = 0
        port_a.attach(self)
        port_b.attach(self)
        sim.process(self._pump(port_a, port_b), name=f"link:{self.name}:a->b")
        sim.process(self._pump(port_b, port_a), name=f"link:{self.name}:b->a")

    # -- wiring ----------------------------------------------------------------
    def other_port(self, port: Port) -> Port:
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"{port!r} is not attached to {self.name}")

    def endpoints(self):
        """The two node names this link connects."""
        return (self.port_a.node.name, self.port_b.node.name)

    # -- state ----------------------------------------------------------------
    def set_down(self) -> None:
        """Administratively disable the link (both directions)."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    # -- data path --------------------------------------------------------------
    def transmit(self, packet: Packet, from_port: Port) -> None:
        """Enqueue ``packet`` for transmission away from ``from_port``."""
        self._queues[id(from_port)].put(packet)

    def _pump(self, src: Port, dst: Port):
        """Serialize packets from ``src`` towards ``dst`` one at a time."""
        queue = self._queues[id(src)]
        while True:
            packet = yield queue.get()
            if not self.up:
                self.packets_dropped_down += 1
                src.stats.record_tx_drop()
                continue
            serialization = self.config.serialization_delay(packet.wire_size)
            if serialization > 0:
                yield self.sim.timeout(serialization)
            if not self.up:
                self.packets_dropped_down += 1
                src.stats.record_tx_drop()
                continue
            if self._rng.bernoulli(self.config.loss_probability):
                self.packets_dropped_loss += 1
                continue
            # Propagation happens in parallel with the next serialization.
            self.sim.schedule_callback(
                self.config.latency_s,
                lambda p=packet, d=dst: self._arrive(p, d),
                name=f"link:{self.name}:deliver",
            )

    def _arrive(self, packet: Packet, dst: Port) -> None:
        if not self.up:
            self.packets_dropped_down += 1
            return
        self.packets_delivered += 1
        dst.deliver(packet)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Link {self.name} {state} {self.config.latency_ms}ms>"
