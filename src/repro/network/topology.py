"""Topology builders.

stream2gym users express topologies in GraphML; internally those are turned
into hosts, switches and links.  This module provides both the programmatic
builder used by the GraphML loader and a few canonical topologies used
throughout the paper's evaluation: the "one big switch" abstraction (Figure 2)
and the star of coordinating sites (Figure 6a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.network.link import LinkConfig
from repro.network.network import Network
from repro.simulation import Simulator


@dataclass
class LinkSpec:
    """Declarative description of one link before it is materialized."""

    a: str
    b: str
    config: LinkConfig = field(default_factory=LinkConfig)
    port_a: Optional[int] = None
    port_b: Optional[int] = None


@dataclass
class HostSpec:
    """Declarative description of one host."""

    name: str
    cpu_percentage: float = 100.0
    cores: int = 8


class TopologyBuilder:
    """Accumulates node/link specifications and materializes a :class:`Network`."""

    def __init__(self) -> None:
        self.host_specs: Dict[str, HostSpec] = {}
        self.switch_names: List[str] = []
        self.link_specs: List[LinkSpec] = []

    # -- declaration --------------------------------------------------------------
    def add_host(
        self, name: str, cpu_percentage: float = 100.0, cores: int = 8
    ) -> "TopologyBuilder":
        if name in self.host_specs or name in self.switch_names:
            raise ValueError(f"duplicate node name {name!r}")
        self.host_specs[name] = HostSpec(name, cpu_percentage, cores)
        return self

    def add_switch(self, name: str) -> "TopologyBuilder":
        if name in self.host_specs or name in self.switch_names:
            raise ValueError(f"duplicate node name {name!r}")
        self.switch_names.append(name)
        return self

    def add_link(
        self,
        a: str,
        b: str,
        config: Optional[LinkConfig] = None,
        port_a: Optional[int] = None,
        port_b: Optional[int] = None,
    ) -> "TopologyBuilder":
        self.link_specs.append(
            LinkSpec(a=a, b=b, config=config or LinkConfig(), port_a=port_a, port_b=port_b)
        )
        return self

    @property
    def node_names(self) -> List[str]:
        return list(self.host_specs) + list(self.switch_names)

    # -- validation ----------------------------------------------------------------
    def validate(self) -> None:
        """Check that links reference known nodes and the graph is connected."""
        known = set(self.node_names)
        for spec in self.link_specs:
            for end in (spec.a, spec.b):
                if end not in known:
                    raise ValueError(f"link references unknown node {end!r}")
        graph = self.as_graph()
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            components = list(nx.connected_components(graph))
            raise ValueError(
                f"topology is not connected ({len(components)} components)"
            )

    def as_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for name in self.node_names:
            graph.add_node(name)
        for spec in self.link_specs:
            graph.add_edge(spec.a, spec.b, latency_ms=spec.config.latency_ms)
        return graph

    # -- materialization ------------------------------------------------------------
    def build(
        self,
        sim: Simulator,
        routing: str = "shortest-path",
        monitor_interval: float = 0.5,
    ) -> Network:
        """Create the network and all of its nodes and links."""
        self.validate()
        network = Network(sim, routing=routing, monitor_interval=monitor_interval)
        for spec in self.host_specs.values():
            network.add_host(spec.name, cpu_percentage=spec.cpu_percentage, cores=spec.cores)
        for name in self.switch_names:
            network.add_switch(name)
        for spec in self.link_specs:
            network.add_link(
                spec.a, spec.b, config=spec.config, port_a=spec.port_a, port_b=spec.port_b
            )
        return network


def one_big_switch(
    sim: Simulator,
    host_names: Iterable[str],
    link_configs: Optional[Dict[str, LinkConfig]] = None,
    switch_name: str = "s1",
    default_config: Optional[LinkConfig] = None,
) -> Network:
    """The "one big switch" abstraction: every host hangs off a single switch.

    ``link_configs`` overrides the per-host access link configuration, which
    is how the Figure 5 experiment varies one component's link delay at a
    time.
    """
    builder = TopologyBuilder()
    builder.add_switch(switch_name)
    configs = link_configs or {}
    base = default_config or LinkConfig(latency_ms=1.0)
    for name in host_names:
        builder.add_host(name)
        builder.add_link(name, switch_name, config=configs.get(name, base))
    network = builder.build(sim)
    network.start(monitor=False)
    return network


def star_topology(
    sim: Simulator,
    n_sites: int,
    site_prefix: str = "site",
    core_switch: str = "s0",
    link_config: Optional[LinkConfig] = None,
) -> Tuple[Network, List[str]]:
    """The Figure 6a scenario: ``n_sites`` coordinating sites around one core switch.

    Each site is a single host that will run a broker, a producer and a
    consumer.  Returns the network and the site host names.
    """
    if n_sites <= 0:
        raise ValueError("n_sites must be positive")
    builder = TopologyBuilder()
    builder.add_switch(core_switch)
    config = link_config or LinkConfig(latency_ms=2.0, bandwidth_mbps=100.0)
    names = []
    for index in range(1, n_sites + 1):
        name = f"{site_prefix}{index}"
        names.append(name)
        builder.add_host(name)
        builder.add_link(name, core_switch, config=config)
    network = builder.build(sim)
    network.start(monitor=False)
    return network, names


def linear_topology(
    sim: Simulator,
    n_hosts: int,
    link_config: Optional[LinkConfig] = None,
) -> Network:
    """A chain of switches, one host per switch (Mininet's ``linear`` topology)."""
    if n_hosts <= 0:
        raise ValueError("n_hosts must be positive")
    builder = TopologyBuilder()
    config = link_config or LinkConfig(latency_ms=1.0)
    for index in range(1, n_hosts + 1):
        switch = f"s{index}"
        host = f"h{index}"
        builder.add_switch(switch)
        builder.add_host(host)
        builder.add_link(host, switch, config=config)
        if index > 1:
            builder.add_link(f"s{index - 1}", switch, config=config)
    network = builder.build(sim)
    network.start(monitor=False)
    return network
