"""Message-level network emulation substrate (Mininet substitute).

The network package emulates the part of Mininet that stream2gym relies on:

* arbitrary topologies of hosts, switches and links;
* per-link latency, bandwidth, and loss shaping (``tc``/netem equivalent);
* link failures and recoveries (``ifconfig down`` equivalent) for
  partition-failure experiments;
* a proactive controller that installs shortest-path forwarding entries
  (``ovs-ofctl`` equivalent) and recomputes them when the topology changes;
* OpenFlow-style per-port statistics used by the monitoring subsystem.

On top of the raw packet path, :mod:`repro.network.transport` provides the
reliable request/response channel that the broker, stream processing engine
and data store clients use.
"""

from repro.network.addressing import AddressAllocator
from repro.network.controller import NetworkController
from repro.network.faults import FaultInjector, LinkFault
from repro.network.host import Host
from repro.network.link import Link, LinkConfig
from repro.network.network import Network
from repro.network.node import Port
from repro.network.packet import Packet
from repro.network.stats import PortStats
from repro.network.switch import Switch
from repro.network.topology import TopologyBuilder, one_big_switch, star_topology
from repro.network.transport import RemoteError, RequestTimeout, Transport

__all__ = [
    "AddressAllocator",
    "Network",
    "NetworkController",
    "Host",
    "Switch",
    "Port",
    "Link",
    "LinkConfig",
    "Packet",
    "PortStats",
    "TopologyBuilder",
    "one_big_switch",
    "star_topology",
    "Transport",
    "RequestTimeout",
    "RemoteError",
    "FaultInjector",
    "LinkFault",
]
