"""Packet model.

The emulation is message-level rather than byte-level: a :class:`Packet`
represents one application-layer message (e.g. a produce request or a fetch
response) together with enough metadata for links and switches to shape and
route it.  Sizes are tracked in bytes so that bandwidth and buffer accounting
remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional

#: Fixed per-message protocol overhead in bytes (Ethernet + IP + TCP headers).
HEADER_OVERHEAD_BYTES = 66

_packet_ids = count(1)


@dataclass
class Packet:
    """One message travelling through the emulated network.

    Attributes
    ----------
    src / dst:
        Names of the source and destination *hosts*.
    src_port / dst_port:
        Application-level port numbers (services bind to ports on hosts).
    payload:
        Arbitrary Python object carried by the message.  The network never
        inspects it.
    size:
        Payload size in bytes (excluding protocol overhead).
    created_at:
        Simulated time at which the packet entered the network.
    trace:
        Names of the nodes the packet has traversed (for tests/debugging).
    """

    src: str
    dst: str
    payload: Any
    size: int = 0
    src_port: int = 0
    dst_port: int = 0
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    headers: Dict[str, Any] = field(default_factory=dict)
    trace: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"packet size must be non-negative, got {self.size}")

    @property
    def wire_size(self) -> int:
        """Bytes actually occupying the wire (payload + protocol overhead)."""
        return self.size + HEADER_OVERHEAD_BYTES

    def hop(self, node_name: str) -> None:
        """Record traversal of a node."""
        self.trace.append(node_name)

    def copy_for_forwarding(self) -> "Packet":
        """Packets are forwarded by reference in this emulator; provided for clarity."""
        return self

    def age(self, now: float) -> float:
        """Time the packet has spent in the network."""
        return now - self.created_at

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.packet_id} {self.src}:{self.src_port} -> "
            f"{self.dst}:{self.dst_port} {self.size}B>"
        )


def estimate_size(payload: Any, floor: int = 16) -> int:
    """Best-effort serialized size estimate for arbitrary payloads.

    The broker and SPE compute record sizes explicitly (``ProducerRecord``
    caches its size at construction and batch/reply sizes are summed from
    those), so hot-path wire messages never reach this recursive walk; this
    helper exists for stub components and control-plane messages that send
    plain Python objects.  Checks are ordered by observed frequency, and
    ASCII strings avoid the UTF-8 encode round-trip.
    """
    if payload is None:
        return floor
    if isinstance(payload, str):
        return max(floor, len(payload) if payload.isascii() else len(payload.encode("utf-8")))
    if isinstance(payload, (int, float, bool)):
        return max(floor, 8)
    if isinstance(payload, dict):
        return max(
            floor,
            sum(estimate_size(k, 4) + estimate_size(v, 4) for k, v in payload.items()),
        )
    if isinstance(payload, (list, tuple, set)):
        return max(floor, sum(estimate_size(item, 4) for item in payload))
    if isinstance(payload, (bytes, bytearray)):
        return max(floor, len(payload))
    return max(floor, len(repr(payload)))
