"""Emulated end hosts.

A host owns one access port into the network, a set of bound services
(application components listening on ports), and a CPU allocation used by the
resource model and the stream processing engine's executor cost model
(``cpuPercentage`` in Table I).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.network.addressing import NodeAddress
from repro.network.node import NetworkNode, Port
from repro.network.packet import Packet, estimate_size
from repro.simulation.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation import Simulator

#: Delay applied to host-local (loopback) deliveries, in seconds.
LOOPBACK_DELAY = 50e-6

ServiceHandler = Callable[[Packet], None]


class Host(NetworkNode):
    """An emulated end host that can run application components."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address: Optional[NodeAddress] = None,
        cpu_percentage: float = 100.0,
        cores: int = 8,
    ) -> None:
        super().__init__(sim, name)
        if not 0 < cpu_percentage <= 100.0:
            raise ValueError("cpu_percentage must lie in (0, 100]")
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.address = address
        self.cpu_percentage = cpu_percentage
        self.cores = cores
        self.cpu = Resource(sim, capacity=cores)
        self.cpu_busy_seconds = 0.0
        self.network = None  # set by Network.add_host
        self._services: Dict[int, ServiceHandler] = {}
        self._next_ephemeral_port = 60000
        self._default_port = self.add_port(1)
        self.packets_sent = 0
        self.packets_received = 0
        self.undeliverable = 0
        self.components: list = []  # application components placed on this host

    # -- service binding ---------------------------------------------------------
    @property
    def port(self) -> Port:
        """The host's access port into the network."""
        return self._default_port

    def bind(self, service_port: int, handler: ServiceHandler) -> None:
        """Register ``handler`` to receive packets addressed to ``service_port``."""
        if service_port in self._services:
            raise ValueError(f"port {service_port} already bound on {self.name}")
        self._services[service_port] = handler

    def unbind(self, service_port: int) -> None:
        self._services.pop(service_port, None)

    def is_bound(self, service_port: int) -> bool:
        return service_port in self._services

    def allocate_port(self) -> int:
        """Return a fresh ephemeral port number (used for transport replies)."""
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        return port

    def register_component(self, component: Any) -> None:
        """Attach an application component (broker, producer, SPE, ...) to this host."""
        self.components.append(component)

    # -- CPU model --------------------------------------------------------------
    def set_cores(self, cores: int) -> None:
        """Change the host's core count (before traffic starts)."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cores = cores
        self.cpu.capacity = cores

    def compute(self, duration: float):
        """Generator: occupy one CPU core for ``duration`` seconds of work.

        The effective duration is stretched by the host's ``cpuPercentage``
        cap (a host allowed only 50% of the CPU takes twice as long), and the
        work queues behind other tasks when all cores are busy — this is what
        makes single-host experiments such as the Ichinose reproduction
        saturate at the core count.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        effective = duration / (self.cpu_percentage / 100.0)
        request = self.cpu.request()
        yield request
        try:
            if effective > 0:
                yield self.sim.timeout(effective)
            self.cpu_busy_seconds += effective
        finally:
            self.cpu.release(request)

    @property
    def cpu_load(self) -> float:
        """Fraction of cores currently busy (instantaneous)."""
        return self.cpu.in_use / self.cpu.capacity

    # -- sending -----------------------------------------------------------------
    def send(
        self,
        dst: str,
        payload: Any,
        size: Optional[int] = None,
        dst_port: int = 0,
        src_port: int = 0,
        headers: Optional[dict] = None,
    ) -> Packet:
        """Send a message to host ``dst`` and return the packet object."""
        packet = Packet(
            src=self.name,
            dst=dst,
            payload=payload,
            size=size if size is not None else estimate_size(payload),
            src_port=src_port,
            dst_port=dst_port,
            created_at=self.sim.now,
            headers=dict(headers or {}),
        )
        self.packets_sent += 1
        packet.hop(self.name)
        if dst == self.name:
            # Loopback: co-located components still pay a small kernel hop.
            self.sim.call_later(LOOPBACK_DELAY, self._deliver_local, packet)
            return packet
        self._default_port.transmit(packet)
        return packet

    def _deliver_local(self, packet: Packet) -> None:
        self.port.stats.record_tx(packet.wire_size)
        self.port.stats.record_rx(packet.wire_size)
        self._dispatch(packet)

    # -- receiving -----------------------------------------------------------------
    def receive(self, packet: Packet, port: Port) -> None:
        packet.hop(self.name)
        if packet.dst != self.name:
            # Hosts do not forward traffic.
            self.undeliverable += 1
            return
        self._dispatch(packet)

    def _dispatch(self, packet: Packet) -> None:
        self.packets_received += 1
        handler = self._services.get(packet.dst_port)
        if handler is None:
            self.undeliverable += 1
            return
        handler(packet)

    def __repr__(self) -> str:
        ip = self.address.ip if self.address else "?"
        return f"<Host {self.name} ip={ip} services={sorted(self._services)}>"
