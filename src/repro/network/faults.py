"""Fault injection: link failures, transient failures, node disconnections.

This is the emulation-level mechanism behind stream2gym's ``faultCfg`` graph
attribute.  Faults are scheduled on the simulation clock; when they fire the
affected links are brought down (and later back up), and the network
controller recomputes routes — exactly what happens when an operator runs
``link down`` in Mininet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import Network


@dataclass
class LinkFault:
    """One scheduled link failure.

    Attributes
    ----------
    endpoints:
        Names of the two nodes whose connecting link fails.
    start:
        Simulated time (seconds) at which the link goes down.
    duration:
        How long the link stays down; ``None`` means it never recovers.
    """

    endpoints: Tuple[str, str]
    start: float
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("fault start time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be positive")

    @property
    def end(self) -> Optional[float]:
        return None if self.duration is None else self.start + self.duration


@dataclass
class NodeDisconnection:
    """Disconnect *all* links of a node (used to partition a broker's host)."""

    node: str
    start: float
    duration: Optional[float] = None

    @property
    def end(self) -> Optional[float]:
        return None if self.duration is None else self.start + self.duration


@dataclass
class FaultEvent:
    """Record of an executed fault action (for the event log / tests)."""

    time: float
    action: str
    target: str


class FaultInjector:
    """Schedules and executes fault actions against a network."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.scheduled: List[object] = []
        self.events: List[FaultEvent] = []

    # -- scheduling -----------------------------------------------------------------
    def schedule_link_fault(self, fault: LinkFault) -> None:
        """Register a link fault to be executed at its start time."""
        self.scheduled.append(fault)
        sim = self.network.sim
        sim.schedule_callback(
            fault.start, lambda f=fault: self._bring_link_down(f), name="fault:link-down"
        )
        if fault.duration is not None:
            sim.schedule_callback(
                fault.start + fault.duration,
                lambda f=fault: self._bring_link_up(f),
                name="fault:link-up",
            )

    def schedule_node_disconnection(self, disconnection: NodeDisconnection) -> None:
        """Register the disconnection of every link attached to a node."""
        self.scheduled.append(disconnection)
        sim = self.network.sim
        sim.schedule_callback(
            disconnection.start,
            lambda d=disconnection: self._disconnect_node(d),
            name="fault:node-down",
        )
        if disconnection.duration is not None:
            sim.schedule_callback(
                disconnection.start + disconnection.duration,
                lambda d=disconnection: self._reconnect_node(d),
                name="fault:node-up",
            )

    def partition(self, group_a: List[str], group_b: List[str], start: float,
                  duration: Optional[float] = None) -> None:
        """Partition the network by failing every link between the two groups."""
        for link in self.network.links:
            a, b = link.endpoints()
            crosses = (a in group_a and b in group_b) or (a in group_b and b in group_a)
            if crosses:
                self.schedule_link_fault(
                    LinkFault(endpoints=(a, b), start=start, duration=duration)
                )

    # -- execution ------------------------------------------------------------------
    def _bring_link_down(self, fault: LinkFault) -> None:
        link = self.network.link_between(*fault.endpoints)
        if link is None:
            raise KeyError(f"no link between {fault.endpoints}")
        link.set_down()
        self._record("link-down", "-".join(fault.endpoints))
        self.network.controller.handle_topology_change()

    def _bring_link_up(self, fault: LinkFault) -> None:
        link = self.network.link_between(*fault.endpoints)
        if link is None:
            return
        link.set_up()
        self._record("link-up", "-".join(fault.endpoints))
        self.network.controller.handle_topology_change()

    def _disconnect_node(self, disconnection: NodeDisconnection) -> None:
        for link in self.network.links_of(disconnection.node):
            link.set_down()
        self._record("node-disconnect", disconnection.node)
        self.network.controller.handle_topology_change()

    def _reconnect_node(self, disconnection: NodeDisconnection) -> None:
        for link in self.network.links_of(disconnection.node):
            link.set_up()
        self._record("node-reconnect", disconnection.node)
        self.network.controller.handle_topology_change()

    def _record(self, action: str, target: str) -> None:
        self.events.append(
            FaultEvent(time=self.network.sim.now, action=action, target=target)
        )

    def history(self) -> List[FaultEvent]:
        return list(self.events)
