"""Base classes for emulated network nodes and their ports."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.network.packet import Packet
from repro.network.stats import PortStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.link import Link
    from repro.simulation import Simulator


class Port:
    """A node's attachment point for a link.

    Ports own the OpenFlow-style statistics counters; every transmitted or
    received packet is accounted for here, including drops.
    """

    def __init__(self, node: "NetworkNode", number: int) -> None:
        self.node = node
        self.number = number
        self.link: Optional["Link"] = None
        self.stats = PortStats()

    @property
    def connected(self) -> bool:
        return self.link is not None

    def attach(self, link: "Link") -> None:
        if self.link is not None:
            raise RuntimeError(
                f"port {self.node.name}:{self.number} is already connected"
            )
        self.link = link

    def transmit(self, packet: Packet) -> bool:
        """Push ``packet`` onto the attached link.

        Returns True if the packet was handed to the link, False if it was
        dropped (no link attached or link administratively down).
        """
        if self.link is None or not self.link.up:
            self.stats.record_tx_drop()
            return False
        self.stats.record_tx(packet.wire_size)
        self.link.transmit(packet, from_port=self)
        return True

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a packet arrives at this port."""
        self.stats.record_rx(packet.wire_size)
        self.node.receive(packet, self)

    def __repr__(self) -> str:
        peer = "-"
        if self.link is not None:
            other = self.link.other_port(self)
            peer = f"{other.node.name}:{other.number}"
        return f"<Port {self.node.name}:{self.number} <-> {peer}>"


class NetworkNode:
    """Common behaviour of hosts and switches."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: Dict[int, Port] = {}

    def add_port(self, number: Optional[int] = None) -> Port:
        """Create a new port; the number defaults to the next free index."""
        if number is None:
            number = max(self.ports.keys(), default=0) + 1
        if number in self.ports:
            raise ValueError(f"port {number} already exists on {self.name}")
        port = Port(self, number)
        self.ports[number] = port
        return port

    def port_by_number(self, number: int) -> Port:
        try:
            return self.ports[number]
        except KeyError:
            raise KeyError(f"{self.name} has no port {number}") from None

    def receive(self, packet: Packet, port: Port) -> None:
        """Handle a packet arriving on ``port`` (overridden by subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ports={sorted(self.ports)}>"
