"""Emulated switches with controller-installed forwarding tables."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.network.node import NetworkNode, Port
from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation import Simulator

#: Per-packet forwarding latency of a software switch, in seconds.  Hardware
#: switches are more than an order of magnitude faster (see the paper's
#: discussion section); the hardware calibration profile overrides this.
DEFAULT_SWITCHING_DELAY = 30e-6


class Switch(NetworkNode):
    """A store-and-forward switch.

    The forwarding table maps destination *host names* to output port numbers
    and is installed proactively by the :class:`NetworkController` (the
    equivalent of stream2gym's ``ovs-ofctl`` control daemon).  Packets with no
    matching entry are dropped and counted, exactly like an OpenFlow switch
    with no table-miss rule.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        switching_delay: float = DEFAULT_SWITCHING_DELAY,
    ) -> None:
        super().__init__(sim, name)
        if switching_delay < 0:
            raise ValueError("switching_delay must be non-negative")
        self.switching_delay = switching_delay
        self.forwarding_table: Dict[str, int] = {}
        self.table_misses = 0
        self.packets_forwarded = 0

    # -- control plane ------------------------------------------------------------
    def install_route(self, dst_host: str, out_port: int) -> None:
        """Install (or update) the forwarding entry for ``dst_host``."""
        if out_port not in self.ports:
            raise KeyError(f"{self.name} has no port {out_port}")
        self.forwarding_table[dst_host] = out_port

    def remove_route(self, dst_host: str) -> None:
        self.forwarding_table.pop(dst_host, None)

    def clear_routes(self) -> None:
        self.forwarding_table.clear()

    def route_for(self, dst_host: str) -> Optional[int]:
        return self.forwarding_table.get(dst_host)

    # -- data plane ------------------------------------------------------------------
    def receive(self, packet: Packet, port: Port) -> None:
        packet.hop(self.name)
        out_port_number = self.forwarding_table.get(packet.dst)
        if out_port_number is None:
            self.table_misses += 1
            port.stats.record_rx_drop()
            return
        out_port = self.ports.get(out_port_number)
        if out_port is None or out_port is port:
            self.table_misses += 1
            return
        self.packets_forwarded += 1
        if self.switching_delay > 0:
            # Fast path: one heap entry per forwarded packet.
            self.sim.call_later(self.switching_delay, out_port.transmit, packet)
        else:
            out_port.transmit(packet)

    def __repr__(self) -> str:
        return f"<Switch {self.name} routes={len(self.forwarding_table)}>"
