"""Reliable request/response transport on top of the packet network.

Every distributed component in the reproduction (brokers, producers,
consumers, stream processing engines, data stores) talks over this layer.  It
provides the subset of TCP + RPC semantics the paper's systems rely on:

* request/response matching via request ids;
* retransmission after a timeout (lost packets, downed links);
* an overall request timeout after which the caller observes a failure —
  exactly the ``requestTimeout`` producer knob that drives the latency
  inflation discussed around Figure 6c;
* remote errors propagated back to the caller as :class:`RemoteError`.

Handlers registered on a service port may be plain functions returning a
response payload, or generator functions that take simulated time (yielding
events) before returning their response.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Dict, Optional, Tuple

from repro.network.host import Host
from repro.network.packet import Packet, estimate_size


class RequestTimeout(Exception):
    """Raised when a request exhausts its retries without a response."""


class RemoteError(Exception):
    """Raised when the remote handler raised an exception."""


@dataclass
class Request:
    """The object handed to service handlers."""

    payload: Any
    src: str
    src_port: int
    size: int
    created_at: float


@dataclass
class Response:
    """Handlers may return a Response to control the reply size explicitly."""

    payload: Any
    size: Optional[int] = None


_request_ids = count(1)

#: Base of the ephemeral port range used for transport-level replies.
REPLY_PORT = 60000


class Transport:
    """Per-host RPC endpoint.

    Multiple transports (one per application component) can coexist on the
    same host: each one binds its own ephemeral reply port, so responses are
    dispatched to the component that issued the request.
    """

    def __init__(self, host: Host, default_timeout: float = 2.0, max_retries: int = 3) -> None:
        if default_timeout <= 0:
            raise ValueError("default_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.host = host
        self.sim = host.sim
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self._pending: Dict[int, Any] = {}
        self._handlers: Dict[int, Callable] = {}
        self.requests_sent = 0
        self.requests_retried = 0
        self.requests_failed = 0
        self.requests_served = 0
        self.reply_port = host.allocate_port()
        host.bind(self.reply_port, self._on_reply)

    # -- server side ----------------------------------------------------------------
    def register(self, port: int, handler: Callable) -> None:
        """Expose ``handler`` on ``port``.

        ``handler(request: Request)`` may return a payload, a
        :class:`Response`, or be a generator that yields simulation events
        before returning its result.
        """
        if port >= REPLY_PORT:
            raise ValueError(
                f"ports >= {REPLY_PORT} are reserved for transport replies"
            )
        self._handlers[port] = handler
        if not self.host.is_bound(port):
            self.host.bind(port, lambda packet, p=port: self._on_request(packet, p))

    def unregister(self, port: int) -> None:
        self._handlers.pop(port, None)
        self.host.unbind(port)

    def _on_request(self, packet: Packet, port: int) -> None:
        handler = self._handlers.get(port)
        if handler is None:
            return
        request_id = packet.headers.get("request_id")
        request = Request(
            payload=packet.payload,
            src=packet.src,
            src_port=packet.src_port,
            size=packet.size,
            created_at=packet.created_at,
        )
        self.sim.process(
            self._serve(handler, request, packet.src, request_id, packet.src_port),
            name=f"{self.host.name}:serve:{port}",
        )

    def _serve(
        self,
        handler: Callable,
        request: Request,
        reply_to: str,
        request_id: Any,
        reply_port: int,
    ):
        self.requests_served += 1
        error: Optional[str] = None
        result: Any = None
        try:
            outcome = handler(request)
            if hasattr(outcome, "send") and hasattr(outcome, "throw"):
                result = yield self.sim.process(outcome, name="handler")
            else:
                result = outcome
        except Exception as exc:  # noqa: BLE001 - remote errors travel to the caller
            error = f"{type(exc).__name__}: {exc}"
        if request_id is None:
            return None
        if isinstance(result, Response):
            payload, size = result.payload, result.size
        else:
            payload, size = result, None
        self.host.send(
            dst=reply_to,
            payload=payload,
            size=size if size is not None else estimate_size(payload),
            dst_port=reply_port,
            src_port=0,
            headers={"request_id": request_id, "error": error},
        )
        return None

    # -- client side ------------------------------------------------------------------
    def _on_reply(self, packet: Packet) -> None:
        request_id = packet.headers.get("request_id")
        waiter = self._pending.pop(request_id, None)
        if waiter is None:
            return  # Late or duplicate reply; drop it.
        error = packet.headers.get("error")
        if waiter.triggered:
            return
        if error is not None:
            waiter.fail(RemoteError(error))
        else:
            waiter.succeed(packet.payload)

    def request(
        self,
        dst: str,
        port: int,
        payload: Any,
        size: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ):
        """Generator: issue a request and return the response payload.

        Usage (inside a simulation process)::

            response = yield from transport.request("broker1", 9092, produce_req)

        Raises :class:`RequestTimeout` when all attempts time out and
        :class:`RemoteError` when the handler raised.
        """
        attempt_timeout = timeout if timeout is not None else self.default_timeout
        attempts = (retries if retries is not None else self.max_retries) + 1
        wire_size = size if size is not None else estimate_size(payload)
        last_error: Optional[Exception] = None
        request_id: Optional[int] = None
        try:
            for attempt in range(attempts):
                request_id = next(_request_ids)
                waiter = self.sim.event()
                self._pending[request_id] = waiter
                self.requests_sent += 1
                if attempt > 0:
                    self.requests_retried += 1
                self.host.send(
                    dst=dst,
                    payload=payload,
                    size=wire_size,
                    dst_port=port,
                    src_port=self.reply_port,
                    headers={"request_id": request_id},
                )
                timeout_event = self.sim.timeout(attempt_timeout)
                outcome = yield self.sim.any_of([waiter, timeout_event])
                if waiter in outcome:
                    return waiter.value
                if waiter.triggered and not waiter.ok:
                    raise waiter.value
                # Timed out: deregister so a late reply cannot resolve this
                # (now stale) request id, then retry under a fresh id.
                self._pending.pop(request_id, None)
                last_error = RequestTimeout(
                    f"{self.host.name} -> {dst}:{port} timed out after {attempt_timeout}s "
                    f"(attempt {attempt + 1}/{attempts})"
                )
            self.requests_failed += 1
            raise last_error if last_error is not None else RequestTimeout("request failed")
        finally:
            # Covers every exit: error replies, exhausted retries, and the
            # requesting process being interrupted / garbage-collected while a
            # request is in flight.  (Successful replies were already removed
            # by _on_reply; pop is a no-op then.)
            if request_id is not None:
                self._pending.pop(request_id, None)

    def request_event(
        self,
        dst: str,
        port: int,
        payload: Any,
        size: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ):
        """Run :meth:`request` as a standalone process and return its Process event.

        Useful for fire-and-forget or fan-out patterns where the caller wants
        to wait on several outstanding requests at once.
        """
        return self.sim.process(
            self.request(dst, port, payload, size=size, timeout=timeout, retries=retries),
            name=f"{self.host.name}:request:{dst}:{port}",
        )

    def notify(self, dst: str, port: int, payload: Any, size: Optional[int] = None) -> None:
        """One-way message with no response and no retries (e.g. metrics, gossip)."""
        self.host.send(
            dst=dst,
            payload=payload,
            size=size if size is not None else estimate_size(payload),
            dst_port=port,
            src_port=self.reply_port,
            headers={},
        )


def wait_any(sim, events):
    """Small helper mirroring ``any_of`` for readability in component code."""
    return sim.any_of(events)


ResponseTuple = Tuple[Any, Optional[int]]
