"""Proactive network controller.

stream2gym configures its emulated network proactively with a lightweight
control daemon based on ``ovs-ofctl`` so that the control plane does not
interfere with measurements.  This controller plays the same role: it builds a
graph of the current topology (excluding failed links), computes shortest
paths (latency-weighted) from every switch to every host, and installs the
resulting next-hop entries in the switches' forwarding tables.  It is invoked
once at start-up and again whenever the fault injector changes link state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.network import Network


class NetworkController:
    """Computes and installs forwarding state for all switches."""

    def __init__(self, network: "Network", routing: str = "shortest-path") -> None:
        if routing not in ("shortest-path", "spanning-tree"):
            raise ValueError(f"unknown routing algorithm {routing!r}")
        self.network = network
        self.routing = routing
        self.recomputations = 0

    # -- public API -----------------------------------------------------------------
    def install_all_routes(self) -> None:
        """(Re)compute routes for the current topology and install them."""
        self.recomputations += 1
        graph = self._build_graph()
        for switch in self.network.switches.values():
            switch.clear_routes()
        for switch_name, switch in self.network.switches.items():
            if switch_name not in graph:
                continue
            for host_name in self.network.hosts:
                if host_name not in graph:
                    continue
                next_hop = self._next_hop(graph, switch_name, host_name)
                if next_hop is None:
                    continue
                port = self._port_towards(switch_name, next_hop)
                if port is not None:
                    switch.install_route(host_name, port)

    def handle_topology_change(self) -> None:
        """Called by the fault injector after links go down or come back up."""
        self.install_all_routes()

    # -- internals --------------------------------------------------------------------
    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for name in self.network.hosts:
            graph.add_node(name)
        for name in self.network.switches:
            graph.add_node(name)
        for link in self.network.links:
            if not link.up:
                continue
            a, b = link.endpoints()
            # Weight by latency so multi-path topologies prefer fast routes;
            # add a tiny epsilon so zero-latency links still count hops.
            weight = link.config.latency_ms + 1e-3
            graph.add_edge(a, b, weight=weight)
        if self.routing == "spanning-tree":
            if graph.number_of_edges() > 0:
                graph = nx.minimum_spanning_tree(graph, weight="weight")
        return graph

    def _next_hop(self, graph: nx.Graph, src: str, dst: str) -> Optional[str]:
        if src == dst:
            return None
        try:
            path = nx.shortest_path(graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        if len(path) < 2:
            return None
        return path[1]

    def _port_towards(self, node_name: str, neighbor_name: str) -> Optional[int]:
        node = self.network.node(node_name)
        for number, port in node.ports.items():
            if port.link is None:
                continue
            other = port.link.other_port(port)
            if other.node.name == neighbor_name:
                return number
        return None

    def path_between(self, src: str, dst: str) -> Optional[Tuple[str, ...]]:
        """Return the current forwarding path between two nodes (for tests)."""
        graph = self._build_graph()
        try:
            return tuple(nx.shortest_path(graph, src, dst, weight="weight"))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def reachability(self) -> Dict[str, Dict[str, bool]]:
        """Host-to-host reachability matrix under the current topology."""
        graph = self._build_graph()
        hosts = list(self.network.hosts)
        matrix: Dict[str, Dict[str, bool]] = {}
        for src in hosts:
            matrix[src] = {}
            for dst in hosts:
                if src == dst:
                    matrix[src][dst] = True
                    continue
                matrix[src][dst] = (
                    src in graph and dst in graph and nx.has_path(graph, src, dst)
                )
        return matrix
