"""The Network object: container for hosts, switches, links and control plane."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.network.addressing import AddressAllocator
from repro.network.controller import NetworkController
from repro.network.host import Host
from repro.network.link import Link, LinkConfig
from repro.network.node import NetworkNode
from repro.network.stats import BandwidthMonitor
from repro.network.switch import Switch
from repro.simulation import Simulator


class Network:
    """An emulated network: the Mininet ``net`` object equivalent.

    Typical usage::

        sim = Simulator(seed=1)
        net = Network(sim)
        s1 = net.add_switch("s1")
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.add_link("h1", "s1", LinkConfig(latency_ms=5))
        net.add_link("h2", "s1", LinkConfig(latency_ms=5))
        net.start()
    """

    def __init__(
        self,
        sim: Simulator,
        routing: str = "shortest-path",
        monitor_interval: float = 0.5,
    ) -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[Link] = []
        self.allocator = AddressAllocator()
        self.controller = NetworkController(self, routing=routing)
        self.bandwidth_monitor = BandwidthMonitor(self, interval=monitor_interval)
        self.started = False

    # -- topology construction ---------------------------------------------------
    def add_host(
        self, name: str, cpu_percentage: float = 100.0, cores: int = 8
    ) -> Host:
        """Create a host and allocate it an IP/MAC."""
        self._check_new_name(name)
        address = self.allocator.allocate(name)
        host = Host(
            self.sim,
            name,
            address=address,
            cpu_percentage=cpu_percentage,
            cores=cores,
        )
        host.network = self
        self.hosts[name] = host
        return host

    def add_switch(self, name: str, switching_delay: Optional[float] = None) -> Switch:
        self._check_new_name(name)
        if switching_delay is None:
            switch = Switch(self.sim, name)
        else:
            switch = Switch(self.sim, name, switching_delay=switching_delay)
        self.switches[name] = switch
        return switch

    def add_link(
        self,
        a: Union[str, NetworkNode],
        b: Union[str, NetworkNode],
        config: Optional[LinkConfig] = None,
        port_a: Optional[int] = None,
        port_b: Optional[int] = None,
    ) -> Link:
        """Connect two nodes with a link.

        Hosts use their single access port; switches get a new port per link
        unless an explicit port number is requested (``st``/``dt`` attributes).
        """
        node_a = self.node(a) if isinstance(a, str) else a
        node_b = self.node(b) if isinstance(b, str) else b
        end_a = self._select_port(node_a, port_a)
        end_b = self._select_port(node_b, port_b)
        link = Link(self.sim, end_a, end_b, config=config)
        self.links.append(link)
        if self.started:
            self.controller.install_all_routes()
        return link

    def _select_port(self, node: NetworkNode, requested: Optional[int]):
        if isinstance(node, Host):
            if requested is not None and requested != node.port.number:
                # Hosts are single-homed in stream2gym scenarios; extra port
                # numbers in the task description are accepted but mapped to
                # the single access port.
                pass
            if node.port.connected:
                raise RuntimeError(f"host {node.name} is already connected")
            return node.port
        if requested is not None:
            if requested in node.ports and not node.ports[requested].connected:
                return node.ports[requested]
            return node.add_port(requested if requested not in node.ports else None)
        return node.add_port()

    def _check_new_name(self, name: str) -> None:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"node name {name!r} already in use")

    # -- lookup ----------------------------------------------------------------------
    def node(self, name: str) -> NetworkNode:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(f"unknown node {name!r}")

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """Find the (first) link connecting nodes ``a`` and ``b``."""
        for link in self.links:
            endpoints = set(link.endpoints())
            if endpoints == {a, b}:
                return link
        return None

    def links_of(self, node_name: str) -> List[Link]:
        return [link for link in self.links if node_name in link.endpoints()]

    # -- lifecycle ----------------------------------------------------------------------
    def start(self, monitor: bool = True) -> None:
        """Install routes and start monitoring; must be called before traffic flows."""
        self.controller.install_all_routes()
        if monitor:
            self.bandwidth_monitor.start()
        self.started = True

    def stop(self) -> None:
        self.bandwidth_monitor.stop()
        self.started = False

    # -- statistics -----------------------------------------------------------------------
    def total_packets_delivered(self) -> int:
        return sum(link.packets_delivered for link in self.links)

    def total_packets_dropped(self) -> int:
        return sum(
            link.packets_dropped_loss + link.packets_dropped_down for link in self.links
        )

    def describe(self) -> dict:
        """Summary of the network for logging / DESIGN inventories."""
        return {
            "hosts": sorted(self.hosts),
            "switches": sorted(self.switches),
            "links": [
                {
                    "endpoints": link.endpoints(),
                    "latency_ms": link.config.latency_ms,
                    "bandwidth_mbps": link.config.bandwidth_mbps,
                    "loss_percent": link.config.loss_percent,
                    "up": link.up,
                }
                for link in self.links
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switches)} "
            f"links={len(self.links)}>"
        )
