"""OpenFlow-style port statistics and bandwidth monitoring.

stream2gym uses OpenFlow 1.3 port counters to report per-port throughput.  We
keep equivalent counters on every emulated port and provide a periodic
bandwidth monitor that samples them, producing the time-series the
visualization module (and Figure 6d) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class PortStats:
    """Cumulative counters for one port, mirroring OpenFlow port stats."""

    tx_packets: int = 0
    rx_packets: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_dropped: int = 0
    rx_dropped: int = 0

    def record_tx(self, size: int) -> None:
        self.tx_packets += 1
        self.tx_bytes += size

    def record_rx(self, size: int) -> None:
        self.rx_packets += 1
        self.rx_bytes += size

    def record_tx_drop(self) -> None:
        self.tx_dropped += 1

    def record_rx_drop(self) -> None:
        self.rx_dropped += 1

    def snapshot(self) -> Dict[str, int]:
        return {
            "tx_packets": self.tx_packets,
            "rx_packets": self.rx_packets,
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "tx_dropped": self.tx_dropped,
            "rx_dropped": self.rx_dropped,
        }


@dataclass
class BandwidthSample:
    """One sample of a port's sending/receiving rate."""

    time: float
    tx_mbps: float
    rx_mbps: float


@dataclass
class BandwidthSeries:
    """Time series of bandwidth samples for a single node/port."""

    node: str
    samples: List[BandwidthSample] = field(default_factory=list)

    def append(self, sample: BandwidthSample) -> None:
        self.samples.append(sample)

    def times(self) -> List[float]:
        return [s.time for s in self.samples]

    def tx_series(self) -> List[float]:
        return [s.tx_mbps for s in self.samples]

    def rx_series(self) -> List[float]:
        return [s.rx_mbps for s in self.samples]

    def peak_tx(self) -> float:
        return max((s.tx_mbps for s in self.samples), default=0.0)

    def mean_tx(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.tx_mbps for s in self.samples) / len(self.samples)

    def __iter__(self) -> Iterator[BandwidthSample]:
        return iter(self.samples)

    def __len__(self) -> int:
        return len(self.samples)


class BandwidthMonitor:
    """Periodically samples port counters and derives throughput series.

    Parameters
    ----------
    network:
        The :class:`~repro.network.network.Network` to monitor.
    interval:
        Sampling period in seconds (stream2gym samples every 500 ms).
    """

    def __init__(self, network, interval: float = 0.5) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval = interval
        self.series: Dict[str, BandwidthSeries] = {}
        self._last_counters: Dict[str, Tuple[int, int]] = {}
        self._running = False
        self._process = None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.network.sim.process(self._run(), name="bandwidth-monitor")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        sim = self.network.sim
        while self._running:
            yield sim.timeout(self.interval)
            self._sample(sim.now)

    def _sample(self, now: float) -> None:
        for host in self.network.hosts.values():
            stats = host.port.stats
            previous_tx, previous_rx = self._last_counters.get(host.name, (0, 0))
            delta_tx = stats.tx_bytes - previous_tx
            delta_rx = stats.rx_bytes - previous_rx
            self._last_counters[host.name] = (stats.tx_bytes, stats.rx_bytes)
            series = self.series.setdefault(host.name, BandwidthSeries(node=host.name))
            series.append(
                BandwidthSample(
                    time=now,
                    tx_mbps=delta_tx * 8 / self.interval / 1e6,
                    rx_mbps=delta_rx * 8 / self.interval / 1e6,
                )
            )

    def series_for(self, node: str) -> Optional[BandwidthSeries]:
        return self.series.get(node)
