"""IP and MAC address allocation for emulated nodes.

Mininet assigns each emulated host an IP in the 10.0.0.0/8 range and a
sequential MAC address; we mirror that so that logs and monitoring output look
familiar and so that address-keyed data structures behave like the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class NodeAddress:
    """The layer-2/3 identity of an emulated node."""

    name: str
    ip: str
    mac: str

    def __str__(self) -> str:
        return f"{self.name}({self.ip})"


class AddressAllocator:
    """Sequentially allocates unique IP/MAC pairs within an emulation."""

    def __init__(self, base_network: str = "10.0.0.0") -> None:
        octets = base_network.split(".")
        if len(octets) != 4 or not all(part.isdigit() for part in octets):
            raise ValueError(f"invalid base network {base_network!r}")
        self._base = [int(part) for part in octets]
        self._next_host = 1
        self._by_name: Dict[str, NodeAddress] = {}
        self._by_ip: Dict[str, NodeAddress] = {}

    def allocate(self, name: str) -> NodeAddress:
        """Allocate (or return the existing) address for ``name``."""
        if name in self._by_name:
            return self._by_name[name]
        index = self._next_host
        self._next_host += 1
        if index > 0xFFFFFF:
            raise RuntimeError("address space exhausted")
        ip = (
            f"{self._base[0]}."
            f"{(index >> 16) & 0xFF}."
            f"{(index >> 8) & 0xFF}."
            f"{index & 0xFF}"
        )
        mac = "00:00:" + ":".join(
            f"{(index >> shift) & 0xFF:02x}" for shift in (24, 16, 8, 0)
        )
        address = NodeAddress(name=name, ip=ip, mac=mac)
        self._by_name[name] = address
        self._by_ip[ip] = address
        return address

    def lookup(self, name: str) -> Optional[NodeAddress]:
        return self._by_name.get(name)

    def resolve_ip(self, ip: str) -> Optional[NodeAddress]:
        return self._by_ip.get(ip)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
