"""Row/table store with simple filtered queries (MySQL substitute)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.network.packet import estimate_size


@dataclass
class Row:
    """One row: a primary key plus a column dictionary."""

    key: Any
    columns: Dict[str, Any] = field(default_factory=dict)

    def get(self, column: str, default: Any = None) -> Any:
        return self.columns.get(column, default)


class Table:
    """A single named table."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.rows: Dict[Any, Row] = {}
        self.bytes_stored = 0

    def upsert(self, key: Any, columns: Dict[str, Any]) -> Row:
        existing = self.rows.get(key)
        if existing is not None:
            self.bytes_stored -= estimate_size(existing.columns)
            existing.columns.update(columns)
            self.bytes_stored += estimate_size(existing.columns)
            return existing
        row = Row(key=key, columns=dict(columns))
        self.rows[key] = row
        self.bytes_stored += estimate_size(row.columns)
        return row

    def get(self, key: Any) -> Optional[Row]:
        return self.rows.get(key)

    def delete(self, key: Any) -> bool:
        row = self.rows.pop(key, None)
        if row is not None:
            self.bytes_stored -= estimate_size(row.columns)
            return True
        return False

    def select(
        self,
        where: Optional[Callable[[Row], bool]] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> List[Row]:
        rows = list(self.rows.values())
        if where is not None:
            rows = [row for row in rows if where(row)]
        if order_by is not None:
            rows.sort(key=lambda row: row.get(order_by), reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        return rows

    def count(self, where: Optional[Callable[[Row], bool]] = None) -> int:
        if where is None:
            return len(self.rows)
        return sum(1 for row in self.rows.values() if where(row))

    def __len__(self) -> int:
        return len(self.rows)


class TableStore:
    """A collection of named tables."""

    def __init__(self, name: str = "tablestore") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.operations = 0

    def table(self, name: str) -> Table:
        """Get (creating if necessary) a table."""
        if name not in self.tables:
            self.tables[name] = Table(name)
        return self.tables[name]

    def upsert(self, table: str, key: Any, columns: Dict[str, Any]) -> Row:
        self.operations += 1
        return self.table(table).upsert(key, columns)

    def get(self, table: str, key: Any) -> Optional[Row]:
        self.operations += 1
        return self.table(table).get(key)

    def select(self, table: str, **kwargs) -> List[Row]:
        self.operations += 1
        return self.table(table).select(**kwargs)

    def delete(self, table: str, key: Any) -> bool:
        self.operations += 1
        return self.table(table).delete(key)

    @property
    def bytes_stored(self) -> int:
        return sum(table.bytes_stored for table in self.tables.values())

    def table_names(self) -> List[str]:
        return sorted(self.tables)
