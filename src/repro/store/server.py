"""Networked data store server and client.

The store server exposes a key-value / table store over the emulated network
(the way the paper's maritime monitoring pipeline writes its results into an
external MySQL instance).  Requests pay a small CPU cost on the store host and
the usual network round trip, so storage placement affects end-to-end latency
exactly like any other pipeline component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.network.host import Host
from repro.network.transport import Request, RequestTimeout, Transport
from repro.store.kvstore import KeyValueStore
from repro.store.table import TableStore

STORE_PORT = 3306


@dataclass
class StoreConfig:
    """Store server tunables (``storeCfg`` keys map onto these)."""

    cpu_per_operation: float = 40e-6
    request_timeout: float = 2.0


class StoreServer:
    """A data store process bound to an emulated host."""

    def __init__(
        self,
        host: Host,
        name: Optional[str] = None,
        config: Optional[StoreConfig] = None,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.name = name or f"store-{host.name}"
        self.config = config or StoreConfig()
        self.kv = KeyValueStore(name=f"{self.name}-kv")
        self.tables = TableStore(name=f"{self.name}-tables")
        self.transport = Transport(host, default_timeout=self.config.request_timeout)
        self.operations_served = 0
        self.transport.register(STORE_PORT, self._handle)
        host.register_component(self)

    def _handle(self, request: Request):
        payload = request.payload or {}
        operation = payload.get("op")

        def serve():
            yield from self.host.compute(self.config.cpu_per_operation)
            self.operations_served += 1
            if operation == "put":
                self.kv.put(payload["key"], payload["value"])
                return {"ok": True}
            if operation == "get":
                return {"ok": True, "value": self.kv.get(payload["key"])}
            if operation == "increment":
                value = self.kv.increment(payload["key"], payload.get("amount", 1))
                return {"ok": True, "value": value}
            if operation == "upsert":
                self.tables.upsert(payload["table"], payload["key"], payload["columns"])
                return {"ok": True}
            if operation == "select":
                rows = self.tables.select(payload["table"])
                return {
                    "ok": True,
                    "rows": [
                        {"key": row.key, "columns": dict(row.columns)} for row in rows
                    ],
                }
            if operation == "scan":
                return {"ok": True, "items": self.kv.scan(payload.get("prefix"))}
            return {"ok": False, "error": f"unknown operation {operation!r}"}

        return serve()


class StoreClient:
    """Client-side handle to a remote store server."""

    def __init__(self, host: Host, store_host: str, timeout: float = 2.0) -> None:
        self.host = host
        self.sim = host.sim
        self.store_host = store_host
        self.timeout = timeout
        self.transport = Transport(host, default_timeout=timeout, max_retries=2)
        self.operations_sent = 0
        self.operations_failed = 0

    # -- synchronous-style generator API -------------------------------------------------
    def put(self, key: Any, value: Any):
        """Generator: store a key-value pair and return once acknowledged."""
        return self._call({"op": "put", "key": key, "value": value})

    def get(self, key: Any):
        """Generator: fetch a value (returns None when missing)."""
        def run():
            reply = yield from self._call({"op": "get", "key": key})
            return reply.get("value") if reply else None

        return run()

    def increment(self, key: Any, amount: float = 1):
        return self._call({"op": "increment", "key": key, "amount": amount})

    def upsert(self, table: str, key: Any, columns: Dict[str, Any]):
        return self._call({"op": "upsert", "table": table, "key": key, "columns": columns})

    def select(self, table: str):
        def run():
            reply = yield from self._call({"op": "select", "table": table})
            return reply.get("rows", []) if reply else []

        return run()

    def _call(self, payload: dict):
        def run():
            self.operations_sent += 1
            try:
                reply = yield from self.transport.request(
                    self.store_host, STORE_PORT, payload, timeout=self.timeout
                )
            except RequestTimeout:
                self.operations_failed += 1
                return None
            return reply

        return run()

    # -- fire-and-forget API used by sinks ---------------------------------------------------
    def put_async(self, table: str, key: Any, value: Any) -> None:
        """Issue an upsert without waiting for the acknowledgement."""
        if isinstance(value, dict):
            columns = value
        else:
            columns = {"value": value}
        self.sim.process(
            self._swallow(self.upsert(table, key, columns)),
            name=f"store-client:{self.host.name}:put_async",
        )

    def _swallow(self, generator):
        yield from generator
