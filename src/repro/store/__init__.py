"""Data stores (MySQL / RocksDB / MongoDB substitutes).

Two storage engines are provided:

* :class:`KeyValueStore` — an embedded, in-memory key-value store with
  optional persistence bookkeeping, standing in for RocksDB-style embedded
  state stores;
* :class:`TableStore` — a row store with named tables and simple filtered
  queries, standing in for the MySQL instance used by the paper's maritime
  monitoring application.

Either engine can be exposed over the emulated network as a
:class:`StoreServer`, with :class:`StoreClient` providing the remote API used
by stream processing sinks.
"""

from repro.store.kvstore import KeyValueStore
from repro.store.table import Row, TableStore
from repro.store.server import StoreClient, StoreServer

__all__ = ["KeyValueStore", "TableStore", "Row", "StoreServer", "StoreClient"]
