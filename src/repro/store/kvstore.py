"""Embedded key-value store."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.network.packet import estimate_size


class KeyValueStore:
    """A simple ordered key-value store with usage accounting.

    The store tracks an approximate on-disk/in-memory footprint so the
    resource model can report storage growth, and counts operations so
    benchmarks can reason about access patterns.
    """

    def __init__(self, name: str = "kvstore") -> None:
        self.name = name
        self._data: Dict[Any, Any] = {}
        self.bytes_stored = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0

    def put(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        if key in self._data:
            self.bytes_stored -= estimate_size(self._data[key])
        self._data[key] = value
        self.bytes_stored += estimate_size(value)
        self.puts += 1

    def get(self, key: Any, default: Any = None) -> Any:
        self.gets += 1
        return self._data.get(key, default)

    def delete(self, key: Any) -> bool:
        self.deletes += 1
        if key in self._data:
            self.bytes_stored -= estimate_size(self._data[key])
            del self._data[key]
            return True
        return False

    def contains(self, key: Any) -> bool:
        return key in self._data

    def increment(self, key: Any, amount: float = 1) -> float:
        """Atomic-style numeric increment (handy for counters)."""
        value = self._data.get(key, 0) + amount
        self.put(key, value)
        return value

    def scan(self, prefix: Optional[str] = None) -> List[Tuple[Any, Any]]:
        """Return (key, value) pairs, optionally filtered by string prefix."""
        items = sorted(self._data.items(), key=lambda kv: str(kv[0]))
        if prefix is None:
            return items
        return [(k, v) for k, v in items if str(k).startswith(prefix)]

    def keys(self) -> List[Any]:
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()
        self.bytes_stored = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)
