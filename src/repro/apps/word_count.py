"""Word count: the paper's reference application (Figure 2).

Pipeline (5 components): a data source streams text documents into the
``raw-data`` topic; stream processing job 1 counts the distinct words of each
document and publishes per-document results to ``words-per-doc``; job 2
computes the average document length per document topic and publishes to
``avg-words-per-topic``; a standard data sink consumes the final topic.  Each
component occupies its own host behind a single switch ("one big switch").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.configs import TopicSpec
from repro.core.emulation import Emulation, EmulationResult
from repro.core.registry import register_app
from repro.core.task import TaskDescription
from repro.workloads.text import generate_documents

RAW_TOPIC = "raw-data"
WORDS_TOPIC = "words-per-doc"
AVERAGE_TOPIC = "avg-words-per-topic"

#: Host naming used by the canonical allocation of Figure 2b.
HOSTS = {
    "source": "h1",
    "broker": "h2",
    "spe_job1": "h3",
    "spe_job2": "h4",
    "sink": "h5",
}


def build_word_count(ctx, config, emulation) -> None:
    """SPE job 1: count the distinct words of each incoming document."""
    input_topics = config.input_topics or [RAW_TOPIC]
    output_topic = config.output_topic or WORDS_TOPIC

    def count_words(document: Dict) -> Dict:
        text = document["text"] if isinstance(document, dict) else str(document)
        words = text.replace(".", " ").split()
        distinct: Dict[str, int] = {}
        for word in words:
            distinct[word] = distinct.get(word, 0) + 1
        return {
            "doc_id": document.get("doc_id") if isinstance(document, dict) else None,
            "topic": document.get("topic", "unknown") if isinstance(document, dict) else "unknown",
            "total_words": len(words),
            "distinct_words": len(distinct),
            "counts": distinct,
        }

    stream = ctx.kafka_stream(input_topics)
    stream.map(count_words).to_kafka(output_topic)


def build_avg_doc_length(ctx, config, emulation) -> None:
    """SPE job 2: running average document length per document topic."""
    input_topics = config.input_topics or [WORDS_TOPIC]
    output_topic = config.output_topic or AVERAGE_TOPIC

    def unwrap(value):
        # Upstream KafkaSink wraps values in {"value": ..., "event_time": ...}.
        return value["value"] if isinstance(value, dict) and "value" in value else value

    def update_average(new_values, previous):
        state = previous or {"count": 0, "total_words": 0}
        for value in new_values:
            state = {
                "count": state["count"] + 1,
                "total_words": state["total_words"] + value["total_words"],
            }
        state["avg_words"] = state["total_words"] / max(1, state["count"])
        return state

    stream = ctx.kafka_stream(input_topics)
    (
        stream.map(unwrap)
        .map_pairs(lambda summary: (summary["topic"], summary))
        .update_state_by_key(update_average)
        .to_kafka(output_topic)
    )


register_app("word_count", build_word_count)
register_app("word-count", build_word_count)
register_app("avg_doc_length", build_avg_doc_length)


def create_task(
    n_documents: int = 100,
    link_latency_ms: float = 5.0,
    link_bandwidth_mbps: float = 100.0,
    per_component_latency: Optional[Dict[str, float]] = None,
    files_per_second: float = 10.0,
    batch_interval: float = 0.5,
    partitions: int = 1,
    idempotence: bool = False,
    transactional_id: Optional[str] = None,
    isolation_level: str = "read_uncommitted",
    vectorized: bool = True,
) -> TaskDescription:
    """Build the Figure 2 word-count task description.

    ``per_component_latency`` overrides the access-link delay of individual
    components (keys: source, broker, spe_job1, spe_job2, sink) — the knob the
    Figure 5 / Figure 8 experiments sweep.  ``partitions`` shards every topic;
    documents are keyed by file name, so a document's records stay ordered on
    one partition.  ``vectorized=False`` pins both SPE jobs to the per-record
    reference path (results are identical either way).
    """
    overrides = per_component_latency or {}
    task = TaskDescription(name="word-count")
    task.add_node(
        HOSTS["source"],
        prodType="DIRECTORY",
        prodCfg={
            "idempotence": idempotence,
            "transactionalId": transactional_id,
            "topicName": RAW_TOPIC,
            "filePath": "documents",
            "totalMessages": n_documents,
            "messagesPerSecond": files_per_second,
        },
    )
    task.add_node(HOSTS["broker"], brokerCfg={"coordinator": True})
    task.add_node(
        HOSTS["spe_job1"],
        streamProcType="SPARK",
        streamProcCfg={
            "app": "word_count",
            "inputTopics": [RAW_TOPIC],
            "outputTopic": WORDS_TOPIC,
            "batchInterval": batch_interval,
            "vectorized": vectorized,
        },
    )
    task.add_node(
        HOSTS["spe_job2"],
        streamProcType="SPARK",
        streamProcCfg={
            "app": "avg_doc_length",
            "inputTopics": [WORDS_TOPIC],
            "outputTopic": AVERAGE_TOPIC,
            "batchInterval": batch_interval,
            "vectorized": vectorized,
        },
    )
    task.add_node(
        HOSTS["sink"],
        consType="STANDARD",
        consCfg={
            "topics": [WORDS_TOPIC, AVERAGE_TOPIC],
            "isolationLevel": isolation_level,
        },
    )
    task.add_switch("s1")
    for role, host in HOSTS.items():
        task.add_link(
            host,
            "s1",
            lat=overrides.get(role, link_latency_ms),
            bw=link_bandwidth_mbps,
        )
    task.set_topics(
        [
            TopicSpec(name=RAW_TOPIC, partitions=partitions, primary_broker=HOSTS["broker"]),
            TopicSpec(name=WORDS_TOPIC, partitions=partitions, primary_broker=HOSTS["broker"]),
            TopicSpec(name=AVERAGE_TOPIC, partitions=partitions, primary_broker=HOSTS["broker"]),
        ]
    )
    return task


def run(
    n_documents: int = 100,
    duration: float = 60.0,
    seed: int = 0,
    per_component_latency: Optional[Dict[str, float]] = None,
    **task_kwargs,
) -> EmulationResult:
    """Build and run the word-count pipeline end to end."""
    task = create_task(
        n_documents=n_documents,
        per_component_latency=per_component_latency,
        **task_kwargs,
    )
    documents = generate_documents(n_documents, seed=seed)
    emulation = Emulation(task, seed=seed, datasets={"documents": documents})
    return emulation.run(duration=duration)
