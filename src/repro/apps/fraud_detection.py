"""Fraud detection: SVM-based anomaly prediction over a transaction stream.

Pipeline (5 components): a transaction producer feeds the ``transactions``
topic, a broker transports them, a stream processing job scores every
transaction with a pre-trained linear SVM and publishes flagged transactions
to the ``fraud-alerts`` topic, a standard data sink consumes the alerts, and
an external store keeps the alert history.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.configs import TopicSpec
from repro.core.emulation import Emulation, EmulationResult
from repro.core.registry import register_app
from repro.core.task import TaskDescription
from repro.ml.svm import LinearSVM
from repro.workloads.transactions import (
    generate_transactions,
    labelled_features,
    transaction_features,
)

TRANSACTIONS_TOPIC = "transactions"
ALERTS_TOPIC = "fraud-alerts"


def train_default_model(n_training: int = 1500, seed: int = 7, epochs: int = 6) -> LinearSVM:
    """Train the SVM used by the streaming job on synthetic labelled history."""
    training = generate_transactions(n_training, fraud_rate=0.25, seed=seed)
    features, labels = labelled_features(training)
    model = LinearSVM(n_features=len(features[0]), seed=seed)
    model.fit(features, labels, epochs=epochs)
    return model


def build_fraud_detection(ctx, config, emulation) -> None:
    """Score transactions with the SVM and emit alerts for predicted fraud."""
    input_topics = config.input_topics or [TRANSACTIONS_TOPIC]
    output_topic = config.output_topic or ALERTS_TOPIC
    model: Optional[LinearSVM] = config.options.get("model")
    if model is None:
        model = train_default_model()

    def score(transaction: Dict) -> Dict:
        features = transaction_features(transaction)
        decision = float(model.decision_function([features])[0])
        return {
            "tx_id": transaction["tx_id"],
            "card_id": transaction["card_id"],
            "amount": transaction["amount"],
            "score": decision,
            "predicted_fraud": decision >= 0,
            "actual_fraud": transaction.get("is_fraud"),
        }

    (
        ctx.kafka_stream(input_topics)
        .map(score)
        .filter(lambda scored: scored["predicted_fraud"])
        .to_kafka(output_topic)
    )


register_app("fraud_detection", build_fraud_detection)


def create_task(
    n_transactions: int = 400,
    transactions_per_second: float = 40.0,
    link_latency_ms: float = 5.0,
    batch_interval: float = 0.5,
    partitions: int = 1,
    idempotence: bool = False,
    transactional_id: Optional[str] = None,
    isolation_level: str = "read_uncommitted",
    vectorized: bool = True,
) -> TaskDescription:
    """Build the fraud-detection task description (5 components).

    Transactions are keyed by ``account_id``, so with ``partitions > 1`` one
    account's history stays ordered on a single partition.
    """
    task = TaskDescription(name="fraud-detection")
    task.add_node(
        "h1",
        prodType="SFST",
        prodCfg={
            "idempotence": idempotence,
            "transactionalId": transactional_id,
            "topicName": TRANSACTIONS_TOPIC,
            "filePath": "transactions",
            "totalMessages": n_transactions,
            "messagesPerSecond": transactions_per_second,
            "keyField": "account_id",
        },
    )
    task.add_node("h2", brokerCfg={"coordinator": True})
    task.add_node(
        "h3",
        streamProcType="SPARK",
        streamProcCfg={
            "app": "fraud_detection",
            "inputTopics": [TRANSACTIONS_TOPIC],
            "outputTopic": ALERTS_TOPIC,
            "batchInterval": batch_interval,
            "vectorized": vectorized,
        },
    )
    task.add_node(
        "h4",
        consType="STANDARD",
        consCfg={"topics": [ALERTS_TOPIC], "isolationLevel": isolation_level},
    )
    task.add_node("h5", storeType="MYSQL", storeCfg={"tables": ["alerts"]})
    task.add_switch("s1")
    for host in ("h1", "h2", "h3", "h4", "h5"):
        task.add_link(host, "s1", lat=link_latency_ms, bw=100.0)
    task.set_topics(
        [
            TopicSpec(name=TRANSACTIONS_TOPIC, partitions=partitions, primary_broker="h2"),
            TopicSpec(name=ALERTS_TOPIC, partitions=partitions, primary_broker="h2"),
        ]
    )
    return task


def run(
    n_transactions: int = 400,
    duration: float = 60.0,
    seed: int = 0,
    fraud_rate: float = 0.05,
    **task_kwargs,
) -> EmulationResult:
    """Build and run the fraud-detection pipeline end to end."""
    task = create_task(n_transactions=n_transactions, **task_kwargs)
    transactions = generate_transactions(n_transactions, fraud_rate=fraud_rate, seed=seed)
    emulation = Emulation(task, seed=seed, datasets={"transactions": transactions})
    result = emulation.run(duration=duration)
    sink = emulation.consumers.get("h4")
    if sink is not None:
        alerts = [record.value for record in sink.records]
        payloads = [
            alert.get("value") if isinstance(alert, dict) and "value" in alert else alert
            for alert in alerts
        ]
        true_positive = sum(1 for alert in payloads if alert.get("actual_fraud"))
        result.extras["alerts"] = len(payloads)
        result.extras["true_positive_alerts"] = true_positive
        result.extras["actual_frauds_in_stream"] = sum(
            1 for tx in transactions if tx["is_fraud"]
        )
    return result
