"""Maritime monitoring: ships heading to watched ports, persisted externally.

Pipeline (4 components): an AIS producer feeds ship position reports into the
``ais-reports`` topic, a broker transports them, a stream processing job
counts — per time window — the distinct ships heading to each watched port,
and writes the per-port counts into an external data store (the MySQL
substitute), which is the application's persistent-storage feature.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.configs import TopicSpec
from repro.core.emulation import Emulation, EmulationResult
from repro.core.registry import register_app
from repro.core.task import TaskDescription
from repro.engine.sinks import StoreSink
from repro.store.server import StoreClient
from repro.workloads.ais import PORTS, generate_ais_messages

AIS_TOPIC = "ais-reports"
RESULTS_TABLE = "ships-per-port"


def build_maritime_monitoring(ctx, config, emulation) -> None:
    """Windowed count of distinct ships heading to each watched port."""
    input_topics = config.input_topics or [AIS_TOPIC]
    window_s = float(config.options.get("windowSeconds", 20.0))
    watched = config.options.get("watchedPorts") or list(PORTS)
    store_node = config.options.get("storeNode")
    if store_node is None:
        raise ValueError("maritime monitoring requires a storeNode option")

    client = StoreClient(ctx.host, store_host=store_node)

    def count_ships(values: List[Dict]) -> Dict:
        ships = {report["mmsi"] for report in values}
        return {"ships": len(ships), "mmsis": sorted(ships)[:50]}

    (
        ctx.kafka_stream(input_topics)
        .filter(lambda report: report["destination"] in watched)
        .window(window_s)
        .map_pairs(lambda report: (report["destination"], report))
        .group_by_key()
        .map(count_ships)
        .to(StoreSink(client, table=RESULTS_TABLE))
    )


register_app("maritime_monitoring", build_maritime_monitoring)


def create_task(
    n_messages: int = 400,
    messages_per_second: float = 40.0,
    link_latency_ms: float = 5.0,
    batch_interval: float = 0.5,
    window_seconds: float = 20.0,
    watched_ports: Optional[List[str]] = None,
    partitions: int = 1,
    idempotence: bool = False,
    transactional_id: Optional[str] = None,
    isolation_level: str = "read_uncommitted",
    vectorized: bool = True,
) -> TaskDescription:
    """Build the maritime-monitoring task description (4 components)."""
    watched = watched_ports or ["halifax", "boston"]
    task = TaskDescription(name="maritime-monitoring")
    task.add_node(
        "h1",
        prodType="SFST",
        prodCfg={
            "idempotence": idempotence,
            "transactionalId": transactional_id,
            "topicName": AIS_TOPIC,
            "filePath": "ais",
            "totalMessages": n_messages,
            "messagesPerSecond": messages_per_second,
        },
    )
    task.add_node("h2", brokerCfg={"coordinator": True})
    task.add_node(
        "h3",
        streamProcType="SPARK",
        streamProcCfg={
            "app": "maritime_monitoring",
            "inputTopics": [AIS_TOPIC],
            "batchInterval": batch_interval,
            "windowSeconds": window_seconds,
            "watchedPorts": watched,
            "storeNode": "h4",
            "vectorized": vectorized,
        },
    )
    task.add_node("h4", storeType="MYSQL", storeCfg={"tables": [RESULTS_TABLE]})
    task.add_switch("s1")
    for host in ("h1", "h2", "h3", "h4"):
        task.add_link(host, "s1", lat=link_latency_ms, bw=100.0)
    task.set_topics([TopicSpec(name=AIS_TOPIC, partitions=partitions, primary_broker="h2")])
    return task


def run(
    n_messages: int = 400,
    duration: float = 60.0,
    seed: int = 0,
    **task_kwargs,
) -> EmulationResult:
    """Build and run the maritime-monitoring pipeline end to end."""
    task = create_task(n_messages=n_messages, **task_kwargs)
    reports = generate_ais_messages(n_messages, seed=seed)
    emulation = Emulation(task, seed=seed, datasets={"ais": reports})
    result = emulation.run(duration=duration)
    store = emulation.stores.get("h4")
    if store is not None:
        rows = store.tables.select(RESULTS_TABLE)
        result.extras["ships_per_port"] = {
            row.key: row.get("ships", row.get("value")) for row in rows
        }
        result.extras["store_operations"] = store.operations_served
    return result
