"""Ride selection: best tipping areas from a structured taxi-ride stream.

Pipeline (5 components): a ride-info producer and a tip producer feed two
topics; one stream processing job joins the two streams on the ride id,
groups the joined records by pickup area over a sliding window, and keeps a
running ranking of areas by average tip (stateful processing); a standard
data sink consumes the ranking topic; a single broker moves all the data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.configs import TopicSpec
from repro.core.emulation import Emulation, EmulationResult
from repro.core.registry import register_app
from repro.core.task import TaskDescription
from repro.workloads.rides import generate_rides

RIDES_TOPIC = "ride-info"
TIPS_TOPIC = "ride-tips"
RANKING_TOPIC = "tipping-areas"


def build_ride_selection(ctx, config, emulation) -> None:
    """Join rides with tips, window by area, rank areas by average tip."""
    rides_topic = config.options.get("ridesTopic", RIDES_TOPIC)
    tips_topic = config.options.get("tipsTopic", TIPS_TOPIC)
    output_topic = config.output_topic or RANKING_TOPIC
    window_s = float(config.options.get("windowSeconds", 30.0))

    rides = ctx.kafka_stream([rides_topic]).map_pairs(
        lambda ride: (ride["ride_id"], ride)
    )
    tips = ctx.kafka_stream([tips_topic]).map_pairs(
        lambda tip: (tip["ride_id"], tip["tip"])
    )

    def update_area_stats(new_values, previous):
        state = previous or {"rides": 0, "tip_total": 0.0}
        for ride, tip in new_values:
            state = {
                "rides": state["rides"] + 1,
                "tip_total": state["tip_total"] + tip,
            }
        state["avg_tip"] = state["tip_total"] / max(1, state["rides"])
        return state

    (
        rides.join(tips)
        .window(window_s)
        .map_pairs(lambda joined: (joined[0]["area"], joined))
        .update_state_by_key(update_area_stats)
        .to_kafka(output_topic)
    )


register_app("ride_selection", build_ride_selection)


def split_rides(rides: List[Dict]) -> Tuple[List[Dict], List[Dict]]:
    """Split full ride records into the ride-info and tip streams."""
    info = [
        {key: value for key, value in ride.items() if key != "tip"} for ride in rides
    ]
    tips = [{"ride_id": ride["ride_id"], "tip": ride["tip"]} for ride in rides]
    return info, tips


def create_task(
    n_rides: int = 200,
    rides_per_second: float = 20.0,
    link_latency_ms: float = 5.0,
    batch_interval: float = 0.5,
    window_seconds: float = 30.0,
    partitions: int = 1,
    idempotence: bool = False,
    transactional_id: Optional[str] = None,
    isolation_level: str = "read_uncommitted",
    vectorized: bool = True,
) -> TaskDescription:
    """Build the ride-selection task description (5 components)."""
    task = TaskDescription(name="ride-selection")
    task.add_node(
        "h1",
        prodType="SFST",
        prodCfg={
            "idempotence": idempotence,
            "transactionalId": transactional_id,
            "topicName": RIDES_TOPIC,
            "filePath": "ride-info",
            "totalMessages": n_rides,
            "messagesPerSecond": rides_per_second,
        },
    )
    task.add_node(
        "h2",
        prodType="SFST",
        prodCfg={
            "idempotence": idempotence,
            "transactionalId": transactional_id,
            "topicName": TIPS_TOPIC,
            "filePath": "ride-tips",
            "totalMessages": n_rides,
            "messagesPerSecond": rides_per_second,
        },
    )
    task.add_node("h3", brokerCfg={"coordinator": True})
    task.add_node(
        "h4",
        streamProcType="SPARK",
        streamProcCfg={
            "app": "ride_selection",
            "inputTopics": [RIDES_TOPIC],
            "outputTopic": RANKING_TOPIC,
            "batchInterval": batch_interval,
            "ridesTopic": RIDES_TOPIC,
            "tipsTopic": TIPS_TOPIC,
            "windowSeconds": window_seconds,
            "vectorized": vectorized,
        },
    )
    task.add_node(
        "h5",
        consType="STANDARD",
        consCfg={"topics": [RANKING_TOPIC], "isolationLevel": isolation_level},
    )
    task.add_switch("s1")
    for host in ("h1", "h2", "h3", "h4", "h5"):
        task.add_link(host, "s1", lat=link_latency_ms, bw=100.0)
    task.set_topics(
        [
            TopicSpec(name=RIDES_TOPIC, partitions=partitions, primary_broker="h3"),
            TopicSpec(name=TIPS_TOPIC, partitions=partitions, primary_broker="h3"),
            TopicSpec(name=RANKING_TOPIC, partitions=partitions, primary_broker="h3"),
        ]
    )
    return task


def run(
    n_rides: int = 200,
    duration: float = 60.0,
    seed: int = 0,
    **task_kwargs,
) -> EmulationResult:
    """Build and run the ride-selection pipeline end to end."""
    task = create_task(n_rides=n_rides, **task_kwargs)
    rides = generate_rides(n_rides, seed=seed)
    info, tips = split_rides(rides)
    emulation = Emulation(
        task, seed=seed, datasets={"ride-info": info, "ride-tips": tips}
    )
    result = emulation.run(duration=duration)
    sink = emulation.consumers.get("h5")
    if sink is not None and sink.records:
        latest: Dict[str, Dict] = {}
        for record in sink.records:
            payload = record.value
            value = payload.get("value") if isinstance(payload, dict) else None
            if value is not None:
                latest[record.key] = value
        ranking = sorted(
            latest.items(), key=lambda item: item[1].get("avg_tip", 0.0), reverse=True
        )
        result.extras["area_ranking"] = ranking
    return result
