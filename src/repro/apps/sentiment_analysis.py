"""Sentiment analysis: polarity and subjectivity of a Tweet stream.

Pipeline (3 components): a tweet producer feeds the ``tweets`` topic, a
single broker transports the unstructured messages, and a stream processing
job computes polarity/subjectivity per tweet, keeping the results in an
in-engine memory sink (the paper's smallest pipeline).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.configs import TopicSpec
from repro.core.emulation import Emulation, EmulationResult
from repro.core.registry import register_app
from repro.core.task import TaskDescription
from repro.ml.sentiment import classify_polarity, sentiment_scores
from repro.workloads.tweets import generate_tweets

TWEETS_TOPIC = "tweets"

#: Memory sinks created per SPE node, retrievable after the run.
_SINKS: Dict[str, object] = {}


def build_sentiment_analysis(ctx, config, emulation) -> None:
    """Score each tweet's polarity and subjectivity."""
    input_topics = config.input_topics or [TWEETS_TOPIC]

    def score(tweet: Dict) -> Dict:
        text = tweet["text"] if isinstance(tweet, dict) else str(tweet)
        scores = sentiment_scores(text)
        return {
            "tweet_id": tweet.get("tweet_id") if isinstance(tweet, dict) else None,
            "polarity": scores["polarity"],
            "subjectivity": scores["subjectivity"],
            "label": classify_polarity(scores["polarity"]),
        }

    stream = ctx.kafka_stream(input_topics)
    sink = stream.map(score).to_memory(name=f"sentiment-{ctx.name}")
    _SINKS[ctx.name] = sink


register_app("sentiment_analysis", build_sentiment_analysis)


def sink_for(ctx_name: str):
    """Return the memory sink created for a given SPE context name."""
    return _SINKS.get(ctx_name)


def create_task(
    n_tweets: int = 300,
    tweets_per_second: float = 50.0,
    link_latency_ms: float = 5.0,
    batch_interval: float = 0.5,
    partitions: int = 1,
    idempotence: bool = False,
    transactional_id: Optional[str] = None,
    isolation_level: str = "read_uncommitted",
    vectorized: bool = True,
) -> TaskDescription:
    """Build the sentiment-analysis task description (3 components)."""
    task = TaskDescription(name="sentiment-analysis")
    task.add_node(
        "h1",
        prodType="SFST",
        prodCfg={
            "idempotence": idempotence,
            "transactionalId": transactional_id,
            "topicName": TWEETS_TOPIC,
            "filePath": "tweets",
            "totalMessages": n_tweets,
            "messagesPerSecond": tweets_per_second,
        },
    )
    task.add_node("h2", brokerCfg={"coordinator": True})
    task.add_node(
        "h3",
        streamProcType="SPARK",
        streamProcCfg={
            "app": "sentiment_analysis",
            "inputTopics": [TWEETS_TOPIC],
            "batchInterval": batch_interval,
            "vectorized": vectorized,
        },
    )
    task.add_switch("s1")
    for host in ("h1", "h2", "h3"):
        task.add_link(host, "s1", lat=link_latency_ms, bw=100.0)
    task.set_topics([TopicSpec(name=TWEETS_TOPIC, partitions=partitions, primary_broker="h2")])
    return task


def run(
    n_tweets: int = 300,
    duration: float = 45.0,
    seed: int = 0,
    **task_kwargs,
) -> EmulationResult:
    """Build and run the sentiment-analysis pipeline end to end."""
    task = create_task(n_tweets=n_tweets, **task_kwargs)
    tweets = generate_tweets(n_tweets, seed=seed)
    emulation = Emulation(task, seed=seed, datasets={"tweets": tweets})
    result = emulation.run(duration=duration)
    sink = sink_for("spe-h3")
    if sink is not None:
        labels: Dict[str, int] = {}
        for value in sink.values():
            labels[value["label"]] = labels.get(value["label"], 0) + 1
        result.extras["label_counts"] = labels
        result.extras["scored_tweets"] = len(sink.results)
    return result
