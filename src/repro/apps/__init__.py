"""Example applications (Table II of the paper).

Five applications are bundled, matching the set the paper deploys to assess
prototyping effort:

========================  ==========  ==========================================
Application               Components  Features
========================  ==========  ==========================================
Word count                5           Multiple stream processing jobs
Ride selection            5           Structured data, stateful processing
Sentiment analysis        3           Unstructured data
Maritime monitoring       4           Persistent storage
Fraud detection           5           Machine learning prediction
========================  ==========  ==========================================

Each module exposes

* one or more *app builders* registered with :mod:`repro.core.registry`
  (referenced from ``streamProcCfg`` documents via their ``app`` name);
* a ``create_task()`` helper producing the application's task description
  (pipeline allocation + topics + topology); and
* a ``run()`` convenience that builds and runs the emulation end to end.

Importing this package registers every bundled application.
"""

from repro.apps import (  # noqa: F401  (imports register the app builders)
    fraud_detection,
    maritime_monitoring,
    ride_selection,
    sentiment_analysis,
    word_count,
)

from repro.apps.word_count import create_task as create_word_count_task, run as run_word_count
from repro.apps.ride_selection import create_task as create_ride_selection_task, run as run_ride_selection
from repro.apps.sentiment_analysis import (
    create_task as create_sentiment_task,
    run as run_sentiment_analysis,
)
from repro.apps.maritime_monitoring import (
    create_task as create_maritime_task,
    run as run_maritime_monitoring,
)
from repro.apps.fraud_detection import (
    create_task as create_fraud_task,
    run as run_fraud_detection,
)

__all__ = [
    "create_word_count_task",
    "run_word_count",
    "create_ride_selection_task",
    "run_ride_selection",
    "create_sentiment_task",
    "run_sentiment_analysis",
    "create_maritime_task",
    "run_maritime_monitoring",
    "create_fraud_task",
    "run_fraud_detection",
]
