"""Synthetic enterprise network traffic (traffic-monitoring reproduction).

Ocampo et al. evaluate a Spark-based traffic monitoring system by scaling the
number of concurrent users, each generating traffic towards a fixed set of
services following a Poisson process.  This generator reproduces that load
model: per-user Poisson packet arrivals, service mix, and flow 5-tuples, in
one-second slots (the monitoring system's processing window).

Batch synthesis
---------------
The hot generator is :func:`generate_traffic_batches`: it emits one columnar
:class:`TrafficSlotBatch` per second — flat parallel arrays of per-packet
fields, grouped by user, with per-user packet counts and byte totals computed
during generation.  Experiment drivers iterate the pre-aggregated per-user
reports straight off the columns, so no per-packet dict ever exists on the
critical path.  :func:`generate_user_traffic` is the legacy per-packet-dict
API, now a thin materializer over the batch generator.

The random draw sequence (per user: one Poisson count; per packet: service
roll, timestamp, size) is identical between both APIs — and identical to the
original per-dict generator — so seeded experiment traces are byte-for-byte
reproducible across the refactor.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Tuple

from repro.simulation.rng import SeededRandom, deterministic_hash

#: Services a user talks to, with (port, mean packet size, relative weight).
SERVICES = {
    "web": (443, 900, 0.45),
    "dns": (53, 120, 0.20),
    "ftp": (21, 1200, 0.10),
    "mail": (25, 600, 0.10),
    "ssh": (22, 300, 0.05),
    "video": (8080, 1300, 0.10),
}

# Derived lookup tables, computed once at import: the service CDF (for a
# single bisect per packet instead of a linear scan) and the per-service
# constants the old generator recomputed per packet (destination IP hash!).
_SERVICE_NAMES: List[str] = list(SERVICES)
_SERVICE_CDF: List[float] = []
_acc = 0.0
for _name in _SERVICE_NAMES:
    _acc += SERVICES[_name][2]
    _SERVICE_CDF.append(_acc)
_TOTAL_WEIGHT = _acc
_SERVICE_PORTS: List[int] = [SERVICES[name][0] for name in _SERVICE_NAMES]
_SERVICE_MEANS: List[float] = [float(SERVICES[name][1]) for name in _SERVICE_NAMES]
_SERVICE_SIGMAS: List[float] = [mean * 0.2 for mean in _SERVICE_MEANS]
_SERVICE_DST_IPS: List[str] = [
    f"192.168.0.{(deterministic_hash(name) % 200) + 1}" for name in _SERVICE_NAMES
]


class TrafficSlotBatch:
    """One second of traffic for all users, in columnar form.

    Packet columns (``timestamps``/``service_ids``/``sizes``) are flat arrays
    aligned by packet index; packets of one user occupy a contiguous span, in
    user order.  ``users``/``user_counts``/``user_bytes`` describe the spans:
    only users that generated at least one packet appear.
    """

    __slots__ = (
        "second",
        "users",
        "user_counts",
        "user_bytes",
        "timestamps",
        "service_ids",
        "sizes",
    )

    def __init__(self, second: int) -> None:
        self.second = second
        self.users: List[int] = []
        self.user_counts: List[int] = []
        self.user_bytes: List[int] = []
        self.timestamps: List[float] = []
        self.service_ids: List[int] = []
        self.sizes: List[int] = []

    def __len__(self) -> int:
        return len(self.sizes)

    @property
    def total_bytes(self) -> int:
        return sum(self.user_bytes)

    def iter_user_reports(self) -> Iterator[Tuple[int, dict, int]]:
        """Yield ``(user, report_value, report_size)`` per active user.

        The report value carries the user's packet columns (service ids and
        sizes, slices of this slot's arrays); the report size models the
        sFlow-style compression of the original system (1/20th of the user's
        packet volume, floored at 256 bytes) — identical to what the old
        per-dict driver computed.
        """
        start = 0
        second = self.second
        service_ids = self.service_ids
        sizes = self.sizes
        for index, user in enumerate(self.users):
            count = self.user_counts[index]
            end = start + count
            value = {
                "slot": second,
                "user": user,
                "service_ids": service_ids[start:end],
                "sizes": sizes[start:end],
            }
            yield user, value, max(256, self.user_bytes[index] // 20)
            start = end

    def iter_keyed_reports(self) -> Iterator[Tuple[str, dict, int]]:
        """Yield ``(flow_key, report_value, report_size)`` per active user.

        The flow key is the user's stable flow identity (``flow-<user>``) —
        the same user always maps to the same key, so keyed partitioning
        routes one user's whole traffic history to one partition and per-flow
        order survives topic sharding.  Values and sizes are identical to
        :meth:`iter_user_reports`.
        """
        for user, value, size in self.iter_user_reports():
            yield flow_key(user), value, size

    def to_packet_dicts(self) -> List[Dict]:
        """Materialize the legacy per-packet dict records (compat API)."""
        packets: List[Dict] = []
        start = 0
        for index, user in enumerate(self.users):
            count = self.user_counts[index]
            src_ip = f"10.1.{user // 250}.{user % 250 + 1}"
            for packet in range(start, start + count):
                service_id = self.service_ids[packet]
                packets.append(
                    {
                        "ts": self.timestamps[packet],
                        "src_ip": src_ip,
                        "dst_ip": _SERVICE_DST_IPS[service_id],
                        "dst_port": _SERVICE_PORTS[service_id],
                        "service": _SERVICE_NAMES[service_id],
                        "size": self.sizes[packet],
                        "user": user,
                    }
                )
            start += count
        return packets


def service_name(service_id: int) -> str:
    """Resolve a column's service id back to its name."""
    return _SERVICE_NAMES[service_id]


def flow_key(user: int) -> str:
    """Stable record key for one user's traffic flow (keyed partitioning)."""
    return f"flow-{user:04d}"


def generate_traffic_batches(
    n_users: int,
    duration_s: int = 10,
    packets_per_user_per_s: float = 25.0,
    seed: int = 0,
) -> List[TrafficSlotBatch]:
    """Generate one columnar :class:`TrafficSlotBatch` per second."""
    if n_users <= 0:
        raise ValueError("n_users must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = SeededRandom(seed)
    poisson = rng.poisson
    random = rng.random
    gauss = rng.gauss
    cdf = _SERVICE_CDF
    means = _SERVICE_MEANS
    sigmas = _SERVICE_SIGMAS
    last_service = len(cdf) - 1
    slots: List[TrafficSlotBatch] = []
    for second in range(duration_s):
        slot = TrafficSlotBatch(second)
        timestamps = slot.timestamps
        service_ids = slot.service_ids
        sizes = slot.sizes
        for user in range(n_users):
            count = poisson(packets_per_user_per_s)
            if count <= 0:
                continue
            user_bytes = 0
            for _ in range(count):
                # Draw order matches the original generator exactly:
                # service roll, then timestamp, then size.
                service = bisect_left(cdf, random() * _TOTAL_WEIGHT)
                if service > last_service:
                    service = last_service
                timestamps.append(second + random())
                size = int(gauss(means[service], sigmas[service]))
                if size < 64:
                    size = 64
                service_ids.append(service)
                sizes.append(size)
                user_bytes += size
            slot.users.append(user)
            slot.user_counts.append(count)
            slot.user_bytes.append(user_bytes)
        slots.append(slot)
    return slots


def generate_user_traffic(
    n_users: int,
    duration_s: int = 10,
    packets_per_user_per_s: float = 25.0,
    seed: int = 0,
) -> List[List[Dict]]:
    """Generate per-second slots of packet records for ``n_users`` users.

    Returns a list with one entry per second; each entry is the list of packet
    records captured during that second across all users.  (Legacy per-dict
    API — materialized from :func:`generate_traffic_batches`.)
    """
    return [
        slot.to_packet_dicts()
        for slot in generate_traffic_batches(
            n_users,
            duration_s=duration_s,
            packets_per_user_per_s=packets_per_user_per_s,
            seed=seed,
        )
    ]
