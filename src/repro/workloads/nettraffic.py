"""Synthetic enterprise network traffic (traffic-monitoring reproduction).

Ocampo et al. evaluate a Spark-based traffic monitoring system by scaling the
number of concurrent users, each generating traffic towards a fixed set of
services following a Poisson process.  This generator reproduces that load
model: per-user Poisson packet arrivals, service mix, and flow 5-tuples, in
one-second slots (the monitoring system's processing window).
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.rng import SeededRandom, deterministic_hash

#: Services a user talks to, with (port, mean packet size, relative weight).
SERVICES = {
    "web": (443, 900, 0.45),
    "dns": (53, 120, 0.20),
    "ftp": (21, 1200, 0.10),
    "mail": (25, 600, 0.10),
    "ssh": (22, 300, 0.05),
    "video": (8080, 1300, 0.10),
}


def generate_user_traffic(
    n_users: int,
    duration_s: int = 10,
    packets_per_user_per_s: float = 25.0,
    seed: int = 0,
) -> List[List[Dict]]:
    """Generate per-second slots of packet records for ``n_users`` users.

    Returns a list with one entry per second; each entry is the list of packet
    records captured during that second across all users.
    """
    if n_users <= 0:
        raise ValueError("n_users must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = SeededRandom(seed)
    service_names = list(SERVICES)
    weights = [SERVICES[name][2] for name in service_names]
    total_weight = sum(weights)
    slots: List[List[Dict]] = []
    for second in range(duration_s):
        slot: List[Dict] = []
        for user in range(n_users):
            count = rng.poisson(packets_per_user_per_s)
            for _ in range(count):
                roll = rng.random() * total_weight
                accumulator = 0.0
                service = service_names[-1]
                for name, weight in zip(service_names, weights):
                    accumulator += weight
                    if roll <= accumulator:
                        service = name
                        break
                port, mean_size, _ = SERVICES[service]
                slot.append(
                    {
                        "ts": second + rng.random(),
                        "src_ip": f"10.1.{user // 250}.{user % 250 + 1}",
                        "dst_ip": f"192.168.0.{(deterministic_hash(service) % 200) + 1}",
                        "dst_port": port,
                        "service": service,
                        "size": max(64, int(rng.gauss(mean_size, mean_size * 0.2))),
                        "user": user,
                    }
                )
        slots.append(slot)
    return slots
