"""Synthetic Tweet stream (sentiment-analysis workload)."""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.rng import SeededRandom

POSITIVE_PHRASES = [
    "love this amazing launch", "great performance today", "what a wonderful result",
    "really happy with the service", "excellent work by the team", "fantastic news",
]
NEGATIVE_PHRASES = [
    "terrible outage again", "awful latency tonight", "really disappointed with this",
    "worst release so far", "this bug is horrible", "completely broken experience",
]
NEUTRAL_PHRASES = [
    "the meeting is at noon", "deploying the new build", "reading the documentation",
    "the dashboard shows numbers", "monitoring the pipeline", "restarting the service",
]
OPINION_MARKERS = ["i think", "i feel", "in my opinion", "honestly", "personally"]


def generate_tweets(n_tweets: int, seed: int = 0) -> List[Dict]:
    """Generate unstructured tweet-like messages with a known sentiment mix."""
    if n_tweets <= 0:
        raise ValueError("n_tweets must be positive")
    rng = SeededRandom(seed)
    tweets = []
    for index in range(n_tweets):
        roll = rng.random()
        if roll < 0.35:
            body = rng.choice(POSITIVE_PHRASES)
            label = "positive"
        elif roll < 0.65:
            body = rng.choice(NEGATIVE_PHRASES)
            label = "negative"
        else:
            body = rng.choice(NEUTRAL_PHRASES)
            label = "neutral"
        subjective = rng.random() < 0.5
        if subjective:
            body = f"{rng.choice(OPINION_MARKERS)} {body}"
        tweets.append(
            {
                "tweet_id": f"tw-{index:07d}",
                "user": f"user{rng.randint(1, 5000)}",
                "text": body,
                "true_sentiment": label,
                "true_subjective": subjective,
            }
        )
    return tweets
