"""Synthetic image frames (video-analytics reproduction, Ichinose et al.).

The original experiment streams MNIST images through Kafka.  The pipelines
only care about the *size* and count of the frames (28x28 greyscale = 784
bytes per image plus a small header), so the generator produces byte payload
descriptors rather than actual pixel data, keeping large experiments cheap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.rng import SeededRandom

#: 28 x 28 single-channel pixels.
MNIST_FRAME_BYTES = 28 * 28
FRAME_HEADER_BYTES = 24


def generate_frames(n_frames: int, seed: int = 0, frame_bytes: int = MNIST_FRAME_BYTES) -> List[Dict]:
    """Generate frame descriptors: id, label, and payload size in bytes."""
    if n_frames <= 0:
        raise ValueError("n_frames must be positive")
    if frame_bytes <= 0:
        raise ValueError("frame_bytes must be positive")
    rng = SeededRandom(seed)
    return [
        {
            "frame_id": index,
            "label": rng.randint(0, 9),
            "camera": f"cam-{index % 4}",
            "size": frame_bytes + FRAME_HEADER_BYTES,
        }
        for index in range(n_frames)
    ]
