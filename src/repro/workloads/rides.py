"""Synthetic taxi ride stream (ride-selection workload)."""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.rng import SeededRandom

#: City areas with (centre latitude, centre longitude, tip multiplier).
AREAS = {
    "downtown": (44.6488, -63.5752, 1.6),
    "airport": (44.8808, -63.5086, 1.3),
    "university": (44.6366, -63.5917, 1.1),
    "harbour": (44.6455, -63.5672, 1.4),
    "suburbs": (44.6700, -63.6500, 0.8),
}


def generate_rides(n_rides: int, seed: int = 0) -> List[Dict]:
    """Generate structured taxi ride records.

    Each record has pickup coordinates, an area label, fare and tip values —
    the fields the ride-selection query (join + groupby + window over tipping
    areas) consumes.
    """
    if n_rides <= 0:
        raise ValueError("n_rides must be positive")
    rng = SeededRandom(seed)
    areas = list(AREAS)
    rides = []
    for index in range(n_rides):
        area = areas[rng.zipf_index(len(areas), 0.7)]
        lat, lon, tip_multiplier = AREAS[area]
        distance_km = max(0.5, rng.lognormal(1.0, 0.6))
        fare = round(3.5 + 1.8 * distance_km, 2)
        tip = round(max(0.0, rng.gauss(0.15, 0.08)) * fare * tip_multiplier, 2)
        rides.append(
            {
                "ride_id": f"ride-{index:06d}",
                "area": area,
                "pickup_lat": round(lat + rng.gauss(0, 0.01), 6),
                "pickup_lon": round(lon + rng.gauss(0, 0.01), 6),
                "distance_km": round(distance_km, 2),
                "fare": fare,
                "tip": tip,
                "passenger_count": rng.randint(1, 4),
            }
        )
    return rides
