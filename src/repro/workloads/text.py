"""Synthetic text documents (word-count and document-analytics workloads)."""

from __future__ import annotations

from typing import List, Tuple

from repro.simulation.rng import SeededRandom

#: A small Zipf-weighted vocabulary; frequent words first.
VOCABULARY = [
    "the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
    "stream", "data", "processing", "system", "network", "broker", "latency",
    "message", "topic", "partition", "replica", "consumer", "producer",
    "cluster", "pipeline", "engine", "query", "window", "state", "event",
    "monitor", "failure", "test", "application", "node", "switch", "link",
    "throughput", "bandwidth", "delay", "emulation", "prototype", "analysis",
    "distributed", "scalable", "fault", "tolerance", "record", "offset",
]

TOPICS = ["systems", "networking", "databases", "ml", "security"]


def generate_sentences(n_sentences: int, seed: int = 0, words_per_sentence: int = 12) -> List[str]:
    """Generate Zipf-flavoured sentences."""
    rng = SeededRandom(seed)
    sentences = []
    for _ in range(n_sentences):
        length = max(3, int(rng.gauss(words_per_sentence, 3)))
        words = [VOCABULARY[rng.zipf_index(len(VOCABULARY), 1.1)] for _ in range(length)]
        sentences.append(" ".join(words))
    return sentences


def generate_documents(
    n_documents: int,
    seed: int = 0,
    sentences_per_document: int = 8,
) -> List[Tuple[str, dict]]:
    """Generate ``(file_name, document)`` pairs.

    Each document is a dictionary with a ``text`` body, a ``topic`` label and
    a ``doc_id``, matching the document analytics pipeline of Figure 2 (word
    count per document, average document length per topic).
    """
    if n_documents <= 0:
        raise ValueError("n_documents must be positive")
    rng = SeededRandom(seed)
    documents = []
    for index in range(n_documents):
        n_sentences = max(1, int(rng.gauss(sentences_per_document, 2)))
        text = ". ".join(
            generate_sentences(1, seed=seed * 10_007 + index * 101 + s)[0]
            for s in range(n_sentences)
        )
        document = {
            "doc_id": f"doc-{index:05d}",
            "topic": TOPICS[rng.zipf_index(len(TOPICS), 0.8)],
            "text": text,
        }
        documents.append((f"doc-{index:05d}.txt", document))
    return documents
