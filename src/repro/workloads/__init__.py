"""Synthetic workload generators.

The paper's example applications consume real datasets (text corpora, taxi
ride logs, Tweet streams, AIS ship reports, financial transactions, MNIST
frames, enterprise packet traces).  None of those are available offline, so
this package generates synthetic equivalents with the same schema and the
statistical properties the pipelines care about (word distributions,
geo-coordinates and fares, message sizes, Poisson traffic, labelled anomalous
transactions).  Every generator is seeded and deterministic.

Determinism makes pre-generation free: figure sweeps re-run the same seeded
generator for every sweep point, so :func:`pregenerated` memoizes synthesis
by ``(generator, arguments)`` and hands the identical trace back — moving
workload generation off the sweep's critical path entirely.  Cached traces
are shared by reference and must be treated as immutable by consumers (every
pipeline in this repo already does).
"""

from typing import Any, Callable

from repro.workloads.text import generate_documents, generate_sentences, VOCABULARY
from repro.workloads.rides import generate_rides
from repro.workloads.tweets import generate_tweets
from repro.workloads.ais import generate_ais_messages, PORTS
from repro.workloads.transactions import generate_transactions
from repro.workloads.images import generate_frames
from repro.workloads.nettraffic import (
    SERVICES,
    TrafficSlotBatch,
    generate_traffic_batches,
    generate_user_traffic,
)

_PREGENERATED_CACHE: dict = {}


def pregenerated(generator: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Memoized workload synthesis: ``pregenerated(fn, *a, **kw) == fn(*a, **kw)``.

    Every generator in this package is a pure function of its arguments (all
    randomness flows from an explicit ``seed``), so a sweep that replays the
    same workload at each point pays for generation once.  The cached object
    is returned by reference — treat it as read-only.
    """
    key = (generator.__module__, generator.__qualname__, args, tuple(sorted(kwargs.items())))
    try:
        return _PREGENERATED_CACHE[key]
    except KeyError:
        _PREGENERATED_CACHE[key] = value = generator(*args, **kwargs)
        return value


def clear_pregenerated_cache() -> None:
    """Drop all memoized workloads (tests / memory-sensitive sweeps)."""
    _PREGENERATED_CACHE.clear()


__all__ = [
    "generate_documents",
    "generate_sentences",
    "generate_rides",
    "generate_tweets",
    "generate_ais_messages",
    "generate_transactions",
    "generate_frames",
    "generate_user_traffic",
    "generate_traffic_batches",
    "TrafficSlotBatch",
    "pregenerated",
    "clear_pregenerated_cache",
    "VOCABULARY",
    "PORTS",
    "SERVICES",
]
