"""Synthetic workload generators.

The paper's example applications consume real datasets (text corpora, taxi
ride logs, Tweet streams, AIS ship reports, financial transactions, MNIST
frames, enterprise packet traces).  None of those are available offline, so
this package generates synthetic equivalents with the same schema and the
statistical properties the pipelines care about (word distributions,
geo-coordinates and fares, message sizes, Poisson traffic, labelled anomalous
transactions).  Every generator is seeded and deterministic.
"""

from repro.workloads.text import generate_documents, generate_sentences, VOCABULARY
from repro.workloads.rides import generate_rides
from repro.workloads.tweets import generate_tweets
from repro.workloads.ais import generate_ais_messages, PORTS
from repro.workloads.transactions import generate_transactions
from repro.workloads.images import generate_frames
from repro.workloads.nettraffic import generate_user_traffic, SERVICES

__all__ = [
    "generate_documents",
    "generate_sentences",
    "generate_rides",
    "generate_tweets",
    "generate_ais_messages",
    "generate_transactions",
    "generate_frames",
    "generate_user_traffic",
    "VOCABULARY",
    "PORTS",
    "SERVICES",
]
