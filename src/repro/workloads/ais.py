"""Synthetic AIS ship-tracking reports (maritime-monitoring workload)."""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.rng import SeededRandom

#: Destination ports of interest with their coordinates.
PORTS = {
    "halifax": (44.6476, -63.5728),
    "saint-john": (45.2733, -66.0633),
    "montreal": (45.5017, -73.5673),
    "boston": (42.3601, -71.0589),
    "new-york": (40.7128, -74.0060),
}

SHIP_TYPES = ["cargo", "tanker", "fishing", "passenger", "tug"]


def generate_ais_messages(
    n_messages: int, n_ships: int = 50, seed: int = 0
) -> List[Dict]:
    """Generate AIS position reports.

    Each report carries the ship identity (MMSI), type, current position,
    speed/heading and the destination port — the fields the maritime
    monitoring query (count ships heading to watched ports per window) needs.
    """
    if n_messages <= 0:
        raise ValueError("n_messages must be positive")
    if n_ships <= 0:
        raise ValueError("n_ships must be positive")
    rng = SeededRandom(seed)
    ports = list(PORTS)
    ships = [
        {
            "mmsi": 316000000 + index,
            "type": rng.choice(SHIP_TYPES),
            "destination": ports[rng.zipf_index(len(ports), 0.6)],
        }
        for index in range(n_ships)
    ]
    messages = []
    for index in range(n_messages):
        ship = ships[index % n_ships]
        port_lat, port_lon = PORTS[ship["destination"]]
        messages.append(
            {
                "msg_id": index,
                "mmsi": ship["mmsi"],
                "ship_type": ship["type"],
                "lat": round(port_lat + rng.gauss(0, 2.0), 5),
                "lon": round(port_lon + rng.gauss(0, 2.0), 5),
                "speed_knots": round(max(0.0, rng.gauss(12, 4)), 1),
                "heading": rng.randint(0, 359),
                "destination": ship["destination"],
            }
        )
    return messages
