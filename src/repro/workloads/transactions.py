"""Synthetic financial transactions (fraud-detection workload)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simulation.rng import SeededRandom

MERCHANT_CATEGORIES = ["grocery", "electronics", "travel", "fuel", "dining", "online"]


def generate_transactions(
    n_transactions: int,
    fraud_rate: float = 0.03,
    seed: int = 0,
) -> List[Dict]:
    """Generate labelled card transactions with a configurable fraud rate.

    Fraudulent transactions are drawn from a shifted distribution (larger
    amounts, odd hours, distant locations), so that a linear classifier can
    meaningfully separate them — this mirrors the role of the SVM in the
    paper's fraud-detection pipeline without requiring the original dataset.
    """
    if n_transactions <= 0:
        raise ValueError("n_transactions must be positive")
    if not 0 <= fraud_rate <= 1:
        raise ValueError("fraud_rate must lie in [0, 1]")
    rng = SeededRandom(seed)
    transactions = []
    for index in range(n_transactions):
        is_fraud = rng.random() < fraud_rate
        if is_fraud:
            amount = rng.lognormal(6.0, 0.8)
            hour = rng.choice([0, 1, 2, 3, 4, 23])
            distance_km = rng.uniform(300, 5000)
            velocity = rng.uniform(5, 40)
        else:
            amount = rng.lognormal(3.4, 0.9)
            hour = rng.randint(6, 22)
            distance_km = rng.uniform(0, 60)
            velocity = rng.uniform(0, 4)
        card = rng.randint(1, 2000)
        transactions.append(
            {
                "tx_id": f"tx-{index:07d}",
                "card_id": f"card-{card:05d}",
                # Stable per-card account identity (derived, not drawn: the RNG
                # sequence is unchanged) — the record key for keyed topic
                # partitioning, so one account's transactions stay ordered on
                # one partition.
                "account_id": f"acct-{card:05d}",
                "amount": round(amount, 2),
                "hour": hour,
                "merchant_category": rng.choice(MERCHANT_CATEGORIES),
                "distance_from_home_km": round(distance_km, 1),
                "transactions_last_hour": round(velocity, 1),
                "is_fraud": is_fraud,
            }
        )
    return transactions


def transaction_features(transaction: Dict) -> List[float]:
    """Feature vector used by the fraud-detection model."""
    return [
        transaction["amount"] / 1000.0,
        1.0 if transaction["hour"] < 6 or transaction["hour"] >= 23 else 0.0,
        transaction["distance_from_home_km"] / 1000.0,
        transaction["transactions_last_hour"] / 10.0,
    ]


def labelled_features(transactions: List[Dict]) -> Tuple[List[List[float]], List[int]]:
    """Split transactions into (features, labels) for training."""
    features = [transaction_features(tx) for tx in transactions]
    labels = [1 if tx["is_fraud"] else -1 for tx in transactions]
    return features, labels
