"""Repo-level pytest configuration.

Registers the ``bench`` marker used by the benchmark harness under
``benchmarks/`` (every test collected there is auto-marked).  Common
invocations:

* ``PYTHONPATH=src python -m pytest -x -q`` — full tier-1 suite, benchmarks
  included (the default gate; must stay green).
* ``PYTHONPATH=src python -m pytest -x -q -m "not bench"`` — quick tier for
  local iteration: unit/integration tests only, a few seconds.
* ``PYTHONPATH=src python -m pytest -x -q -m "not bench and not chaos"`` —
  fastest tier: additionally skips the seeded chaos/fault-injection matrix
  (``tests/test_chaos_exactly_once.py``).
* ``PYTHONPATH=src python -m pytest benchmarks -q`` — paper figures/tables
  plus the core-speed trajectory (updates ``BENCH_core.json``).

Engine path
-----------
``--engine-path={columnar,record,both}`` selects the SPE execution plane for
the whole run (default ``columnar``, the production default):

* ``record`` forces the per-record reference path everywhere — contexts
  follow the session default unless a test pins ``StreamingConfig
  (vectorized=...)`` explicitly;
* ``both`` keeps the session default columnar but runs every test that
  requests the ``engine_path`` fixture once per path (the SPE-facing chaos
  tests and the vectorized equivalence suite use it).

Log backend
-----------
``--log-backend={memory,segments,both}`` selects the partition-log storage
shape for the whole run (default ``memory``, the flat single-array layout
every golden was captured on):

* ``segments`` makes every :class:`~repro.broker.log.PartitionLog` without
  explicit storage config run segmented (512-record roll) — the way to
  re-run the broker/chaos suites against sealed-segment storage.  The
  seeded determinism goldens and the bench trajectory skip themselves under
  this backend (their byte-exact traces/baselines assume ``memory``);
* ``both`` keeps the session default ``memory`` but parametrizes every test
  requesting the ``log_backend`` fixture over both backends.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--engine-path",
        choices=("columnar", "record", "both"),
        default="columnar",
        help=(
            "SPE execution plane: 'columnar' (vectorized, default), 'record' "
            "(force the per-record reference path session-wide), or 'both' "
            "(parametrize engine_path-fixture tests over the two paths)"
        ),
    )
    parser.addoption(
        "--log-backend",
        choices=("memory", "segments", "both"),
        default="memory",
        help=(
            "Partition-log storage: 'memory' (flat single-array layout, "
            "default), 'segments' (segmented 512-record-roll logs "
            "session-wide), or 'both' (parametrize log_backend-fixture tests "
            "over the two backends)"
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: slow paper-reproduction benchmark (deselect with -m \"not bench\")",
    )
    config.addinivalue_line(
        "markers",
        "chaos: seeded chaos/fault-injection matrix (deselect with -m \"not chaos\")",
    )
    config.addinivalue_line(
        "markers",
        "sweep: spawns subprocess worker pools (deselect with -m \"not sweep\" on "
        "hosts where forking pools is unavailable); the rest of the quick tier "
        "never needs a subprocess",
    )
    path = config.getoption("--engine-path")
    if path in ("columnar", "record"):
        try:
            from repro.engine import set_default_engine_path
        except ImportError:
            # src/ not importable yet (PYTHONPATH unset): "columnar" is the
            # in-code default anyway; an explicit "record" run must not
            # silently proceed on the wrong path.
            if path == "record":
                raise
        else:
            set_default_engine_path(path)
    backend = config.getoption("--log-backend")
    if backend in ("memory", "segments"):
        try:
            from repro.broker.segment import set_default_log_backend
        except ImportError:
            # Same contract as --engine-path: "memory" is the in-code
            # default; an explicit "segments" run must not silently proceed
            # on the flat layout.
            if backend == "segments":
                raise
        else:
            set_default_log_backend(backend)


def pytest_generate_tests(metafunc):
    if "engine_path" in metafunc.fixturenames:
        mode = metafunc.config.getoption("--engine-path")
        paths = ["columnar", "record"] if mode == "both" else [mode]
        metafunc.parametrize("engine_path", paths, indirect=True)
    if "log_backend" in metafunc.fixturenames:
        mode = metafunc.config.getoption("--log-backend")
        backends = ["memory", "segments"] if mode == "both" else [mode]
        metafunc.parametrize("log_backend", backends, indirect=True)


@pytest.fixture
def engine_path(request):
    """The SPE path this test runs under; sets the session default for its
    duration (parametrized over both paths under ``--engine-path=both``)."""
    from repro.engine import default_engine_path, set_default_engine_path

    path = request.param
    previous = default_engine_path()
    set_default_engine_path(path)
    yield path
    set_default_engine_path(previous)


@pytest.fixture
def log_backend(request):
    """The partition-log storage backend this test runs under; sets the
    session default for its duration (parametrized over both backends under
    ``--log-backend=both``)."""
    from repro.broker.segment import default_log_backend, set_default_log_backend

    backend = request.param
    previous = default_log_backend()
    set_default_log_backend(backend)
    yield backend
    set_default_log_backend(previous)
