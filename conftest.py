"""Repo-level pytest configuration.

Registers the ``bench`` marker used by the benchmark harness under
``benchmarks/`` (every test collected there is auto-marked).  Common
invocations:

* ``PYTHONPATH=src python -m pytest -x -q`` — full tier-1 suite, benchmarks
  included (the default gate; must stay green).
* ``PYTHONPATH=src python -m pytest -x -q -m "not bench"`` — quick tier for
  local iteration: unit/integration tests only, a few seconds.
* ``PYTHONPATH=src python -m pytest -x -q -m "not bench and not chaos"`` —
  fastest tier: additionally skips the seeded chaos/fault-injection matrix
  (``tests/test_chaos_exactly_once.py``).
* ``PYTHONPATH=src python -m pytest benchmarks -q`` — paper figures/tables
  plus the core-speed trajectory (updates ``BENCH_core.json``).
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: slow paper-reproduction benchmark (deselect with -m \"not bench\")",
    )
    config.addinivalue_line(
        "markers",
        "chaos: seeded chaos/fault-injection matrix (deselect with -m \"not chaos\")",
    )
    config.addinivalue_line(
        "markers",
        "sweep: spawns subprocess worker pools (deselect with -m \"not sweep\" on "
        "hosts where forking pools is unavailable); the rest of the quick tier "
        "never needs a subprocess",
    )
